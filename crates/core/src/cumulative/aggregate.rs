//! The Block-Cut-Tree sweep (paper Algorithm 6, Step 3).
//!
//! Computes, for every (cut vertex `c`, block `B`) incidence, the pair
//!
//! * `W(c→B)` — the number of vertices in the BCT subtree hanging off `c`
//!   away from `B` (blocks' owned vertices + cut vertices, including `c`);
//! * `D(c→B)` — the sum of their exact distances to `c`.
//!
//! One bottom-up pass accumulates child subtrees towards the root; one
//! top-down pass fills the root-side direction (the paper's Fig. 3 (a)/(b)
//! `weight` / `dCarry` traversals). Legs between cut vertices inside one
//! block use the exact block-local cut-to-cut distances from phase A.

use brics_bicc::{BctNode, BlockCutTree};
use serde::{Deserialize, Serialize};

/// Per-block inputs collected by phase A.
pub(crate) struct BlockLocalSums<'a> {
    /// Global cut-vertex ids of each block (defines the cut index order).
    pub cuts_of_block: &'a [Vec<u32>],
    /// `sdo[b][j]` — Σ of distances from cut `j` of block `b` to every
    /// vertex *owned* by `b` (non-cut survivors + homed removed vertices).
    pub sdo: &'a [Vec<u64>],
    /// `cutdist[b][i][j]` — block-local distance between cuts `i` and `j`.
    pub cutdist: &'a [Vec<Vec<u32>>],
    /// `own[b]` — number of vertices owned by block `b`.
    pub own: &'a [u64],
    /// Multiplicity of each cut vertex (by cut index): 1 plus the number of
    /// identical twins riding on it (engine docs). Twins sit at distance 0
    /// from their cut for every outside vertex, so only the weight grows.
    pub cut_mult: &'a [u64],
}

/// Output: `w[b][j]` / `d[b][j]` per (block, cut-index) incidence.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) struct Aggregates {
    pub w: Vec<Vec<u64>>,
    pub d: Vec<Vec<u64>>,
}

pub(crate) fn sweep(bct: &BlockCutTree, input: &BlockLocalSums<'_>) -> Aggregates {
    let nb = bct.num_blocks();
    let nc = bct.num_cut_vertices();
    let (order, parent) = bct.rooted_order();

    // Children positions per order position.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); order.len()];
    for (i, &p) in parent.iter().enumerate() {
        if p != usize::MAX {
            children[p].push(i);
        }
    }
    let cut_idx_in_block = |b: usize, cut_global: u32| -> usize {
        input.cuts_of_block[b]
            .iter()
            .position(|&c| c == cut_global)
            .expect("cut not in its block's cut list")
    };

    // ---- Bottom-up: subtree aggregates away from the root. ----
    // wd/dd: per cut node — the subtree at the cut, away from its parent
    // block. wb/db: per block node — the block side, evaluated at its
    // parent cut.
    let mut wd = vec![0u64; nc];
    let mut dd = vec![0u64; nc];
    let mut wb = vec![0u64; nb];
    let mut db = vec![0u64; nb];
    for i in (0..order.len()).rev() {
        match order[i] {
            BctNode::Cut(c) => {
                let mut w = input.cut_mult[c as usize];
                let mut d = 0u64;
                for &ch in &children[i] {
                    let BctNode::Block(b) = order[ch] else { unreachable!("cut child of cut") };
                    w += wb[b as usize];
                    d += db[b as usize];
                }
                wd[c as usize] = w;
                dd[c as usize] = d;
            }
            BctNode::Block(b) => {
                let b = b as usize;
                if parent[i] == usize::MAX {
                    continue; // root block: no upward side
                }
                let BctNode::Cut(cp) = order[parent[i]] else {
                    unreachable!("block parent must be a cut")
                };
                let jp = cut_idx_in_block(b, bct.cut_vertices()[cp as usize]);
                let mut w = input.own[b];
                let mut d = input.sdo[b][jp];
                for &ch in &children[i] {
                    let BctNode::Cut(c) = order[ch] else { unreachable!() };
                    let j = cut_idx_in_block(b, bct.cut_vertices()[c as usize]);
                    w += wd[c as usize];
                    d += dd[c as usize]
                        + wd[c as usize] * input.cutdist[b][j][jp] as u64;
                }
                wb[b] = w;
                db[b] = d;
            }
        }
    }

    // ---- Top-down: fill final per-incidence values. ----
    let mut w_final: Vec<Vec<u64>> =
        input.cuts_of_block.iter().map(|cs| vec![0; cs.len()]).collect();
    let mut d_final: Vec<Vec<u64>> =
        input.cuts_of_block.iter().map(|cs| vec![0; cs.len()]).collect();
    // Root-side values handed down: per block (set by its parent cut) and
    // per cut (set by its parent block).
    let mut w_from_parent = vec![0u64; nb];
    let mut d_from_parent = vec![0u64; nb];
    let mut upw_cut = vec![0u64; nc];
    let mut upd_cut = vec![0u64; nc];

    for (i, node) in order.iter().enumerate() {
        match *node {
            BctNode::Block(b) => {
                let b = b as usize;
                let parent_cut: Option<u32> = match parent[i] {
                    usize::MAX => None,
                    p => match order[p] {
                        BctNode::Cut(c) => Some(bct.cut_vertices()[c as usize]),
                        BctNode::Block(_) => unreachable!(),
                    },
                };
                for (j, &cg) in input.cuts_of_block[b].iter().enumerate() {
                    if parent_cut == Some(cg) {
                        w_final[b][j] = w_from_parent[b];
                        d_final[b][j] = d_from_parent[b];
                    } else {
                        let ci = bct.cut_index_of(cg).expect("not a cut") as usize;
                        w_final[b][j] = wd[ci];
                        d_final[b][j] = dd[ci];
                    }
                }
                // Upward values for this block's child cuts.
                for &ch in &children[i] {
                    let BctNode::Cut(c) = order[ch] else { unreachable!() };
                    let cg = bct.cut_vertices()[c as usize];
                    let jc = cut_idx_in_block(b, cg);
                    let mut w = input.own[b];
                    let mut d = input.sdo[b][jc];
                    for j in 0..input.cuts_of_block[b].len() {
                        if j == jc {
                            continue;
                        }
                        w += w_final[b][j];
                        d += d_final[b][j]
                            + w_final[b][j] * input.cutdist[b][j][jc] as u64;
                    }
                    upw_cut[c as usize] = w;
                    upd_cut[c as usize] = d;
                }
            }
            BctNode::Cut(c) => {
                let c = c as usize;
                let child_blocks: Vec<usize> = children[i]
                    .iter()
                    .map(|&ch| match order[ch] {
                        BctNode::Block(b) => b as usize,
                        BctNode::Cut(_) => unreachable!(),
                    })
                    .collect();
                let total_w: u64 = child_blocks.iter().map(|&b| wb[b]).sum();
                let total_d: u64 = child_blocks.iter().map(|&b| db[b]).sum();
                for &b in &child_blocks {
                    w_from_parent[b] = input.cut_mult[c] + upw_cut[c] + (total_w - wb[b]);
                    d_from_parent[b] = upd_cut[c] + (total_d - db[b]);
                }
            }
        }
    }

    Aggregates { w: w_final, d: d_final }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_bicc::BlockCutTree;
    use brics_graph::generators::path_graph;

    /// Path 0-1-2: blocks {0,1} and {1,2}, cut vertex 1. Own counts:
    /// each block owns its non-cut endpoint. From block {0,1}: the subtree
    /// beyond cut 1 is {1 itself, 2}: W = 2, D = d(1,1) + d(2,1) = 1.
    #[test]
    fn three_vertex_path_by_hand() {
        let g = path_graph(3);
        let bct = BlockCutTree::build(&g);
        assert_eq!(bct.num_blocks(), 2);
        assert_eq!(bct.cut_vertices(), &[1]);
        let cuts_of_block = vec![vec![1u32], vec![1u32]];
        // Each block: cut 1 at distance 1 from the owned endpoint → sdo = 1.
        let sdo = vec![vec![1u64], vec![1u64]];
        let cutdist = vec![vec![vec![0u32]], vec![vec![0u32]]];
        let own = vec![1u64, 1u64];
        let agg = sweep(
            &bct,
            &BlockLocalSums {
                cuts_of_block: &cuts_of_block,
                sdo: &sdo,
                cutdist: &cutdist,
                own: &own,
                cut_mult: &[1],
            },
        );
        for b in 0..2 {
            assert_eq!(agg.w[b][0], 2, "block {b}");
            assert_eq!(agg.d[b][0], 1, "block {b}");
        }
    }

    /// Path 0-1-2-3: three bridge blocks, cuts {1, 2}.
    #[test]
    fn four_vertex_path_by_hand() {
        let g = path_graph(4);
        let bct = BlockCutTree::build(&g);
        assert_eq!(bct.num_blocks(), 3);
        assert_eq!(bct.cut_vertices(), &[1, 2]);
        // Block order from the decomposition is deterministic; identify
        // blocks by their vertex sets.
        let mut blocks: Vec<Vec<u32>> = bct
            .blocks()
            .iter()
            .map(|b| {
                let mut v = b.vertices.clone();
                v.sort_unstable();
                v
            })
            .collect();
        let idx_of = |vs: &[u32]| blocks.iter().position(|b| b == vs).unwrap();
        let b01 = idx_of(&[0, 1]);
        let b12 = idx_of(&[1, 2]);
        let b23 = idx_of(&[2, 3]);
        blocks.sort();

        let mut cuts_of_block = vec![Vec::new(); 3];
        cuts_of_block[b01] = vec![1u32];
        cuts_of_block[b12] = vec![1u32, 2u32];
        cuts_of_block[b23] = vec![2u32];
        let mut sdo = vec![Vec::new(); 3];
        sdo[b01] = vec![1]; // owned {0}, d(1,0)=1
        sdo[b12] = vec![0, 0]; // owns nothing (both vertices are cuts)
        sdo[b23] = vec![1];
        let mut cutdist = vec![Vec::new(); 3];
        cutdist[b01] = vec![vec![0]];
        cutdist[b12] = vec![vec![0, 1], vec![1, 0]];
        cutdist[b23] = vec![vec![0]];
        let own = {
            let mut o = vec![0u64; 3];
            o[b01] = 1;
            o[b12] = 0;
            o[b23] = 1;
            o
        };
        let agg = sweep(
            &bct,
            &BlockLocalSums {
                cuts_of_block: &cuts_of_block,
                sdo: &sdo,
                cutdist: &cutdist,
                own: &own,
                cut_mult: &[1, 1],
            },
        );
        // From b01, beyond cut 1: {1, 2, 3} with distances 0, 1, 2 → W=3, D=3.
        assert_eq!(agg.w[b01][0], 3);
        assert_eq!(agg.d[b01][0], 3);
        // From b23, beyond cut 2: {2, 1, 0} distances 0, 1, 2 → W=3, D=3.
        assert_eq!(agg.w[b23][0], 3);
        assert_eq!(agg.d[b23][0], 3);
        // From b12, beyond cut 1: {1, 0} → W=2, D=1; beyond cut 2: {2, 3}.
        let j1 = cuts_of_block[b12].iter().position(|&c| c == 1).unwrap();
        let j2 = 1 - j1;
        assert_eq!(agg.w[b12][j1], 2);
        assert_eq!(agg.d[b12][j1], 1);
        assert_eq!(agg.w[b12][j2], 2);
        assert_eq!(agg.d[b12][j2], 1);
    }

    /// Global invariant: own(B) + Σ_j W[b][j] == total vertex count.
    #[test]
    fn weights_partition_the_graph() {
        use brics_graph::generators::lollipop;
        let g = lollipop(4, 3); // K4 {0..3} + tail 4,5,6
        let bct = BlockCutTree::build(&g);
        let n = g.num_nodes();
        // Build honest local sums via brute-force BFS inside each block.
        let mut cuts_of_block = Vec::new();
        let mut sdo = Vec::new();
        let mut cutdist = Vec::new();
        let mut own = Vec::new();
        for blk in bct.blocks() {
            let cuts: Vec<u32> =
                blk.vertices.iter().copied().filter(|&v| bct.is_cut_vertex(v)).collect();
            let sub = brics_graph::InducedSubgraph::from_edge_list(&g, &blk.vertices, &blk.edges);
            let owned: Vec<u32> = blk
                .vertices
                .iter()
                .copied()
                .filter(|&v| !bct.is_cut_vertex(v))
                .collect();
            own.push(owned.len() as u64);
            let mut row_sdo = Vec::new();
            let mut row_cd = vec![vec![0u32; cuts.len()]; cuts.len()];
            for (i, &c) in cuts.iter().enumerate() {
                let d = brics_graph::traversal::bfs_distances(
                    &sub.graph,
                    sub.to_local(c).unwrap(),
                );
                row_sdo.push(
                    owned.iter().map(|&v| d[sub.to_local(v).unwrap() as usize] as u64).sum(),
                );
                for (j, &c2) in cuts.iter().enumerate() {
                    row_cd[i][j] = d[sub.to_local(c2).unwrap() as usize];
                }
            }
            cuts_of_block.push(cuts);
            sdo.push(row_sdo);
            cutdist.push(row_cd);
        }
        let cut_mult = vec![1u64; bct.num_cut_vertices()];
        let agg = sweep(
            &bct,
            &BlockLocalSums {
                cuts_of_block: &cuts_of_block,
                sdo: &sdo,
                cutdist: &cutdist,
                own: &own,
                cut_mult: &cut_mult,
            },
        );
        for (b, own_b) in own.iter().enumerate() {
            let covered: u64 = own_b + agg.w[b].iter().sum::<u64>();
            assert_eq!(covered, n as u64, "block {b}");
        }
    }
}
