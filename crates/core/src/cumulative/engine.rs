//! Orchestration of the Cumulative estimate (paper Algorithm 5).

use super::aggregate::{sweep, Aggregates, BlockLocalSums};
use super::homing::home_records;
use crate::budget::cumulative_run_bytes;
use crate::config::SampleSize;
use crate::{CentralityError, FarnessEstimate};
use brics_bicc::{biconnected_components, BlockCutTree};
use brics_graph::telemetry::{
    admit_memory_rec, record_outcome, record_panic, timed, Counter, NullRecorder, Recorder,
};
use brics_graph::traversal::{
    atomic_view, Bfs, DialBfs, HybridBfs, Kernel, KernelConfig, WorkerGuard,
};
use brics_graph::weighted::{build_weighted, edge_weight};
use brics_graph::{CsrGraph, Dist, GraphBuilder, NodeId, RunControl, INFINITE_DIST, INVALID_NODE};
use brics_reduce::{apply_record, reduce_ctl_rec, ReductionConfig, Removal};
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Per-block working context (paper: one BCT block node).
struct BlockCtx {
    /// Block subgraph over local ids.
    graph: CsrGraph,
    /// Arc-aligned edge weights of the block subgraph, present when the
    /// reduction contracted chains (see `brics-reduce`).
    weights: Option<Vec<u32>>,
    /// Local id → global id.
    verts: Vec<NodeId>,
    /// Whether each local vertex is a cut vertex of the whole graph.
    is_cut_local: Vec<bool>,
    /// Local ids of the block's cut vertices (defines the cut index order
    /// used by the aggregates).
    cut_locals: Vec<NodeId>,
    /// Global ids of the block's cut vertices, aligned with `cut_locals`.
    cut_globals: Vec<NodeId>,
    /// Removal-record indices homed to this block, ascending.
    records: Vec<usize>,
    /// Owned vertex count: non-cut block vertices + homed removed vertices.
    own: u64,
    /// Sampled sources (local ids): all cut vertices first, then the
    /// randomly chosen non-cut vertices.
    sources_local: Vec<NodeId>,
}

/// Puts the vertices of the given records back into the reduced graph:
/// marks them surviving, re-adds their incident edges, and drops the
/// records. Only multi-anchor records (parallel chains, redundant nodes)
/// can straddle blocks, and both carry enough information to rebuild their
/// edges exactly.
fn restore_records(red: &mut brics_reduce::ReductionResult, indices: &[usize]) {
    use std::collections::BTreeSet;
    let idx: BTreeSet<usize> = indices.iter().copied().collect();
    // Rebuild as weighted triples so contracted edges keep their weights;
    // restored edges are unit-weight (they are original graph edges). A
    // restored contracted chain may coexist with its own weighted edge —
    // harmless, the edge parallels the path at equal length.
    let mut triples: Vec<(NodeId, NodeId, u32)> = match &red.weights {
        Some(w) => red
            .graph
            .edges()
            .map(|(u, v)| (u, v, edge_weight(&red.graph, w, u, v).unwrap()))
            .collect(),
        None => red.graph.edges().map(|(u, v)| (u, v, 1)).collect(),
    };
    for &i in &idx {
        match &red.records[i] {
            Removal::Chain { u, v, nodes, .. } => {
                debug_assert_ne!(u, v, "single-anchor chains cannot straddle blocks");
                let mut prev = *u;
                for &x in nodes {
                    triples.push((prev, x, 1));
                    red.removed[x as usize] = false;
                    prev = x;
                }
                triples.push((prev, *v, 1));
            }
            Removal::Redundant { node, neighbors } => {
                for &w in neighbors {
                    triples.push((*node, w, 1));
                }
                red.removed[*node as usize] = false;
            }
            Removal::Identical { .. } => {
                unreachable!("identical records have one anchor and never straddle")
            }
        }
    }
    let weighted = red.weights.is_some();
    let (g, w) = build_weighted(red.graph.num_nodes(), &triples);
    red.graph = g;
    red.weights = weighted.then_some(w);
    let mut j = 0usize;
    red.records.retain(|_| {
        let keep = !idx.contains(&j);
        j += 1;
        keep
    });
}

/// Runs the full BRICS Cumulative pipeline.
pub fn cumulative_estimate(
    g: &CsrGraph,
    reductions: &ReductionConfig,
    sample: SampleSize,
    seed: u64,
) -> Result<FarnessEstimate, CentralityError> {
    cumulative_estimate_ctl(g, reductions, sample, seed, &RunControl::new())
}

/// Runs the block-local single-source distances for one task: Dial's
/// bucket queue when the block carries contracted-chain weights, the
/// direction-optimizing kernel otherwise (unless the config pins the
/// classic top-down BFS, which Dial's unweighted fast path is).
fn block_distances<'a>(
    dial: &'a mut DialBfs,
    hybrid: &'a mut HybridBfs,
    ctx: &BlockCtx,
    source: NodeId,
    kernel: Kernel,
) -> &'a [Dist] {
    if ctx.weights.is_none() && kernel != Kernel::TopDown {
        hybrid.run_with(&ctx.graph, source, |_, _| {});
        &hybrid.distances()[..ctx.verts.len()]
    } else {
        dial.run_with(&ctx.graph, ctx.weights.as_deref(), source, |_, _| {});
        &dial.distances()[..ctx.verts.len()]
    }
}

/// [`cumulative_estimate`] under a [`RunControl`].
///
/// Interruption granularity is one BFS task. Phase A (cut-vertex BFS,
/// feeding the BCT sweep) is all-or-nothing: if the deadline expires there,
/// no inter-block mass exists yet and a zero-coverage estimate is returned
/// (trivially sound: every lower bound degrades to `n − 1`). In Phase B each
/// `(block, source)` task either lands completely or not at all; a source —
/// in particular a cut vertex, which is a source in *every* block containing
/// it — is only marked sampled/exact once all of its tasks completed, and
/// per-vertex coverage counts exactly the completed tasks of the vertex's
/// home block.
pub fn cumulative_estimate_ctl(
    g: &CsrGraph,
    reductions: &ReductionConfig,
    sample: SampleSize,
    seed: u64,
    ctl: &RunControl,
) -> Result<FarnessEstimate, CentralityError> {
    cumulative_estimate_ctl_with(g, reductions, sample, seed, ctl, &KernelConfig::default())
}

/// [`cumulative_estimate_ctl`] with an explicit BFS kernel choice. The
/// kernel applies to unweighted blocks in both phases; blocks whose edges
/// carry contracted-chain weights always use Dial's bucket queue (the
/// direction-optimizing heuristic is meaningless under non-unit weights).
pub fn cumulative_estimate_ctl_with(
    g: &CsrGraph,
    reductions: &ReductionConfig,
    sample: SampleSize,
    seed: u64,
    ctl: &RunControl,
    kcfg: &KernelConfig,
) -> Result<FarnessEstimate, CentralityError> {
    cumulative_estimate_ctl_rec(g, reductions, sample, seed, ctl, kcfg, &NullRecorder)
}

/// [`cumulative_estimate_ctl_with`] with a telemetry [`Recorder`]: records
/// spans for the reduction, decomposition/homing, Phase A, the BCT sweep
/// and Phase B, plus per-phase task counts, homing rounds, BCT shape and
/// RunControl events. The recorder only observes — the estimate is
/// bit-identical with [`NullRecorder`].
pub fn cumulative_estimate_ctl_rec<R: Recorder>(
    g: &CsrGraph,
    reductions: &ReductionConfig,
    sample: SampleSize,
    seed: u64,
    ctl: &RunControl,
    kcfg: &KernelConfig,
    rec: &R,
) -> Result<FarnessEstimate, CentralityError> {
    let kcfg = *kcfg;
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    admit_memory_rec(ctl, cumulative_run_bytes(n), rec)?;
    // Connectivity gate: the BCT combination assumes one component.
    {
        let mut bfs = Bfs::new(n);
        let (reached, _) = bfs.run_with(g, 0, |_, _| {});
        if reached != n {
            let comps = brics_graph::connectivity::connected_components(g).count();
            return Err(CentralityError::Disconnected { components: comps });
        }
    }
    let start = Instant::now();

    // ---- Reduce and decompose (Algorithm 4). ----
    // The reduction can dominate wall time on large graphs with little
    // reducible structure, so it too runs under the control; interruption
    // there degrades to the same zero-coverage estimate as a Phase-A abort.
    let mut red = match timed(rec, "reduce", || reduce_ctl_rec(g, reductions, ctl, rec)) {
        Ok(r) => r,
        Err(outcome) => {
            record_outcome(rec, outcome, "cumulative reduction pipeline interrupted");
            return Ok(FarnessEstimate::new(
                vec![0; n],
                vec![0.0; n],
                vec![false; n],
                vec![0; n],
                0,
                start.elapsed(),
                outcome,
            ))
        }
    };
    // Home every record; records whose anchors straddle blocks (paper Fact
    // III.5) are *restored* into the reduced graph — sound because every
    // removal's validity argument is local, and convergent because
    // restoration only merges blocks. Typically 0 or 1 extra rounds.
    let (bct, homing, homing_rounds) = timed(rec, "cumulative.homing", || {
        let mut rounds = 0u64;
        loop {
            rounds += 1;
            let mut bi = biconnected_components(&red.graph);
            // Removed vertices are isolated in the reduced CSR; drop their
            // synthetic singleton blocks (survivor singletons stay).
            bi.blocks
                .retain(|b| !b.edges.is_empty() || !red.removed[b.vertices[0] as usize]);
            let bct = BlockCutTree::from_biconnectivity(n, bi);
            let homing = home_records(&red, &bct);
            if homing.cross_records.is_empty() {
                break (bct, homing, rounds);
            }
            restore_records(&mut red, &homing.cross_records);
        }
    });
    if rec.enabled() {
        rec.add(Counter::CumulativeHomingRounds, homing_rounds);
        rec.add(Counter::BctBlocks, bct.num_blocks() as u64);
        rec.add(Counter::BctCutVertices, bct.num_cut_vertices() as u64);
    }
    // Identical twins of *cut vertices* cannot be homed to a single block:
    // d(x, twin) = d(x, rep) everywhere, and the rep spans several blocks.
    // They are pulled out of block homing and modelled as extra multiplicity
    // on the cut's BCT node (distance 0 from the cut for every outside
    // vertex; the rep itself sees each of its twins at distance exactly 2,
    // added at assembly). `twin_rep[v]` marks such vertices; their final
    // estimate is a verbatim copy of the rep's (farness equality, §III-A).
    let mut homing = homing;
    let mut cut_mult = vec![1u64; bct.num_cut_vertices()];
    let mut twin_rep: Vec<Option<NodeId>> = vec![None; n];
    let mut is_twin_record = vec![false; red.records.len()];
    for (i, rec) in red.records.iter().enumerate() {
        if let Removal::Identical { node, rep } = rec {
            if !red.removed[*rep as usize] {
                if let Some(ci) = bct.cut_index_of(*rep) {
                    cut_mult[ci as usize] += 1;
                    twin_rep[*node as usize] = Some(*rep);
                    is_twin_record[i] = true;
                }
            }
        }
    }
    for list in &mut homing.block_records {
        list.retain(|&ri| !is_twin_record[ri]);
    }
    let survivors = red.surviving();
    let k_total = sample.resolve(survivors.len());
    if k_total == 0 {
        return Err(CentralityError::NoSamples);
    }

    // ---- Materialize block contexts + per-block sampling (Step 2 prep). ----
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g2l = vec![INVALID_NODE; n];
    let nb = bct.num_blocks();
    let mut removed_per_block = vec![0u64; nb];
    for (b, recs) in homing.block_records.iter().enumerate() {
        removed_per_block[b] =
            recs.iter().map(|&ri| red.records[ri].removed_count() as u64).sum();
    }
    let mut blocks = Vec::with_capacity(nb);
    for (b, blk) in bct.blocks().iter().enumerate() {
        let verts = blk.vertices.clone();
        for (l, &v) in verts.iter().enumerate() {
            g2l[v as usize] = l as NodeId;
        }
        let (graph, block_weights) = match &red.weights {
            None => {
                let mut builder = GraphBuilder::with_capacity(verts.len(), blk.edges.len());
                for &(u, v) in &blk.edges {
                    builder.add_edge(g2l[u as usize], g2l[v as usize]);
                }
                (builder.build(), None)
            }
            Some(w) => {
                let triples: Vec<(NodeId, NodeId, u32)> = blk
                    .edges
                    .iter()
                    .map(|&(u, v)| {
                        (
                            g2l[u as usize],
                            g2l[v as usize],
                            edge_weight(&red.graph, w, u, v).expect("block edge missing"),
                        )
                    })
                    .collect();
                let (g, lw) = build_weighted(verts.len(), &triples);
                // Blocks untouched by contraction run the plain-BFS path.
                let lw = lw.iter().any(|&x| x != 1).then_some(lw);
                (g, lw)
            }
        };
        let is_cut_local: Vec<bool> = verts.iter().map(|&v| bct.is_cut_vertex(v)).collect();
        let cut_locals: Vec<NodeId> = (0..verts.len() as NodeId)
            .filter(|&l| is_cut_local[l as usize])
            .collect();
        let cut_globals: Vec<NodeId> =
            cut_locals.iter().map(|&l| verts[l as usize]).collect();
        let noncut: Vec<NodeId> = (0..verts.len() as NodeId)
            .filter(|&l| !is_cut_local[l as usize])
            .collect();

        // Paper Algorithm 5 line 9: k_i = ⌈k·|B_i|/|G_R|⌉ − |cuts|.
        let quota =
            ((k_total as f64) * (verts.len() as f64) / (survivors.len() as f64)).ceil() as usize;
        let k_noncut = quota.saturating_sub(cut_locals.len()).min(noncut.len());
        let mut sources_local = cut_locals.clone();
        if k_noncut > 0 {
            let mut picked: Vec<NodeId> = index_sample(&mut rng, noncut.len(), k_noncut)
                .into_iter()
                .map(|i| noncut[i])
                .collect();
            picked.sort_unstable();
            sources_local.extend(picked);
        }
        for &v in &verts {
            g2l[v as usize] = INVALID_NODE;
        }
        blocks.push(BlockCtx {
            graph,
            weights: block_weights,
            verts,
            is_cut_local,
            cut_locals,
            cut_globals,
            records: homing.block_records[b].clone(),
            own: (blk.vertices.len() as u64
                - bct.blocks()[b].vertices.iter().filter(|&&v| bct.is_cut_vertex(v)).count()
                    as u64)
                + removed_per_block[b],
            sources_local,
        });
    }
    let records: &[Removal] = &red.records;

    // ---- Phase A: block-local BFS from every cut vertex. ----
    // Guarded per block: the sweep needs *every* block's cut data, so an
    // interruption here aborts to a zero-coverage estimate below.
    // Per block: each cut vertex's subtree distance sum, plus the dense
    // cut-to-cut distance matrix.
    type CutData = (Vec<u64>, Vec<Vec<u32>>);
    let guard_a = WorkerGuard::new(ctl);
    let phase_a: Vec<Option<CutData>> = timed(rec, "cumulative.phase_a", || {
        blocks
            .par_iter()
            .map_init(
            || (DialBfs::new(64), HybridBfs::with_params(64, kcfg.params), vec![INFINITE_DIST; n]),
            |(bfs, hyb, gdist), ctx| {
                let out = guard_a.run_source(ctx.verts[0], || {
                let nc = ctx.cut_locals.len();
                let mut sdo = Vec::with_capacity(nc);
                let mut cd = vec![vec![0u32; nc]; nc];
                for (ci, &cl) in ctx.cut_locals.iter().enumerate() {
                    let dl = block_distances(bfs, hyb, ctx, cl, kcfg.kernel);
                    for (cj, &cl2) in ctx.cut_locals.iter().enumerate() {
                        cd[ci][cj] = dl[cl2 as usize];
                    }
                    let mut s = 0u64;
                    for (l, &d) in dl.iter().enumerate() {
                        if !ctx.is_cut_local[l] {
                            s += d as u64;
                        }
                    }
                    if !ctx.records.is_empty() {
                        for (l, &gid) in ctx.verts.iter().enumerate() {
                            gdist[gid as usize] = dl[l];
                        }
                        for &ri in ctx.records.iter().rev() {
                            apply_record(&records[ri], gdist);
                        }
                        for &ri in &ctx.records {
                            for x in records[ri].removed_nodes() {
                                let d = gdist[x as usize];
                                debug_assert_ne!(d, INFINITE_DIST);
                                s += d as u64;
                                gdist[x as usize] = INFINITE_DIST;
                            }
                        }
                        for &gid in &ctx.verts {
                            gdist[gid as usize] = INFINITE_DIST;
                        }
                    }
                    sdo.push(s);
                }
                (sdo, cd)
                });
                if out.is_some() && rec.enabled() {
                    // One block-local BFS per cut vertex of this block.
                    let nc = ctx.cut_locals.len() as u64;
                    rec.add(Counter::VerticesVisited, nc * ctx.verts.len() as u64);
                    rec.add(Counter::EdgesScanned, nc * ctx.graph.num_arcs() as u64);
                }
                out
            },
            )
            .collect()
    });
    let outcome_a = guard_a.finish().map_err(|p| {
        record_panic(rec, &p.detail);
        p
    })?;
    if rec.enabled() {
        rec.add(Counter::CumulativePhaseATasks, phase_a.iter().flatten().count() as u64);
    }
    record_outcome(rec, outcome_a, "cumulative phase A (cut-vertex BFS)");
    if !outcome_a.is_complete() {
        // No sweep data ⇒ no inter-block mass for anyone. Zero raw values
        // with zero coverage: every lower bound degrades to n − 1, which is
        // sound on a connected graph.
        return Ok(FarnessEstimate::new(
            vec![0; n],
            vec![0.0; n],
            vec![false; n],
            vec![0; n],
            0,
            start.elapsed(),
            outcome_a,
        ));
    }
    let phase_a: Vec<(Vec<u64>, Vec<Vec<u32>>)> =
        phase_a.into_iter().map(Option::unwrap).collect();

    // ---- Step 3: the BCT sweep. ----
    let cuts_of_block: Vec<Vec<u32>> = blocks.iter().map(|c| c.cut_globals.clone()).collect();
    let sdo: Vec<Vec<u64>> = phase_a.iter().map(|(s, _)| s.clone()).collect();
    let cutdist: Vec<Vec<Vec<u32>>> = phase_a.into_iter().map(|(_, c)| c).collect();
    let own: Vec<u64> = blocks.iter().map(|c| c.own).collect();
    let agg: Aggregates = timed(rec, "cumulative.sweep", || {
        sweep(
            &bct,
            &BlockLocalSums {
                cuts_of_block: &cuts_of_block,
                sdo: &sdo,
                cutdist: &cutdist,
                own: &own,
                cut_mult: &cut_mult,
            },
        )
    });
    #[cfg(debug_assertions)]
    for (b, own_b) in own.iter().enumerate() {
        debug_assert_eq!(
            own_b + agg.w[b].iter().sum::<u64>(),
            n as u64,
            "weight partition broken at block {b}"
        );
    }

    // ---- Phase B: block-local BFS from every sampled source (Step 2). ----
    let mut acc = vec![0u64; n]; // intra partial sums (non-cut sources)
    let mut inter = vec![0u64; n]; // exact inter-block mass (cut sources)
    let mut exact = vec![0u64; n]; // per-source exact farness
    let acc_a: &[AtomicU64] = atomic_view(&mut acc);
    let inter_a: &[AtomicU64] = atomic_view(&mut inter);
    let exact_a: &[AtomicU64] = atomic_view(&mut exact);

    let tasks: Vec<(u32, u32)> = blocks
        .iter()
        .enumerate()
        .flat_map(|(b, ctx)| {
            (0..ctx.sources_local.len() as u32).map(move |si| (b as u32, si))
        })
        .collect();

    // Each (block, source) task is one interruption unit: its intra mass,
    // reconstruction mass, inter mass and exact-farness contribution land
    // atomically with respect to the control (checked before the task
    // starts, never mid-task).
    let guard_b = WorkerGuard::new(ctl);
    let completed: Vec<bool> = timed(rec, "cumulative.phase_b", || {
        tasks
            .par_iter()
            .map_init(
        || (DialBfs::new(64), HybridBfs::with_params(64, kcfg.params), vec![INFINITE_DIST; n]),
        |(bfs, hyb, gdist), &(b, si)| {
            let ctx = &blocks[b as usize];
            let sl = ctx.sources_local[si as usize];
            let s_global = ctx.verts[sl as usize];
            let is_cut_source = ctx.is_cut_local[sl as usize];
            let done = guard_b.run_source(s_global, || {
            let dl = block_distances(bfs, hyb, ctx, sl, kcfg.kernel);
            // Cut-source constants for the inter terms of this source.
            let (dc, wc) = if is_cut_source {
                let j = ctx.cut_locals.iter().position(|&l| l == sl).unwrap();
                (agg.d[b as usize][j], agg.w[b as usize][j])
            } else {
                (0, 0)
            };

            let mut own_sum = 0u64;
            for (l, &d) in dl.iter().enumerate() {
                if ctx.is_cut_local[l] {
                    continue;
                }
                let gid = ctx.verts[l] as usize;
                let d = d as u64;
                own_sum += d;
                if is_cut_source {
                    inter_a[gid].fetch_add(dc + wc * d, Ordering::Relaxed);
                } else if d > 0 {
                    acc_a[gid].fetch_add(d, Ordering::Relaxed);
                }
            }
            if !ctx.records.is_empty() {
                for (l, &gid) in ctx.verts.iter().enumerate() {
                    gdist[gid as usize] = dl[l];
                }
                for &ri in ctx.records.iter().rev() {
                    apply_record(&records[ri], gdist);
                }
                for &ri in &ctx.records {
                    for x in records[ri].removed_nodes() {
                        let d = gdist[x as usize] as u64;
                        own_sum += d;
                        if is_cut_source {
                            inter_a[x as usize].fetch_add(dc + wc * d, Ordering::Relaxed);
                        } else {
                            acc_a[x as usize].fetch_add(d, Ordering::Relaxed);
                        }
                        gdist[x as usize] = INFINITE_DIST;
                    }
                }
                for &gid in &ctx.verts {
                    gdist[gid as usize] = INFINITE_DIST;
                }
            }
            // Inter part of this source's own (exact) farness.
            let mut inter_part = 0u64;
            for (j, &cl) in ctx.cut_locals.iter().enumerate() {
                if cl == sl {
                    continue; // a cut vertex skips its own subtree term
                }
                inter_part +=
                    agg.d[b as usize][j] + agg.w[b as usize][j] * dl[cl as usize] as u64;
            }
            exact_a[s_global as usize].fetch_add(own_sum + inter_part, Ordering::Relaxed);
            })
            .is_some();
            if done && rec.enabled() {
                rec.add(Counter::VerticesVisited, ctx.verts.len() as u64);
                rec.add(Counter::EdgesScanned, ctx.graph.num_arcs() as u64);
            }
            done
        },
            )
            .collect()
    });
    let outcome_b = guard_b.finish().map_err(|p| {
        record_panic(rec, &p.detail);
        p
    })?;
    if rec.enabled() {
        rec.add(
            Counter::CumulativePhaseBTasks,
            completed.iter().filter(|&&c| c).count() as u64,
        );
    }
    record_outcome(rec, outcome_b, "cumulative phase B (sampled-source BFS)");
    let outcome = outcome_a.merge(outcome_b);

    // ---- Step 4: assemble farness values. ----
    // A source counts as sampled (⇒ exact) only when *all* its tasks
    // completed — a cut vertex has one task per incident block, and a
    // partial `exact[]` sum is a lower bound, not an exact farness. Per
    // block, tally the completed cut tasks' subtree weights and completed
    // non-cut tasks for partial-coverage accounting.
    let mut task_total = vec![0u32; n];
    let mut task_done = vec![0u32; n];
    let mut done_cut_w = vec![0u64; nb];
    let mut done_noncut = vec![0u64; nb];
    for (t, &(b, si)) in tasks.iter().enumerate() {
        let ctx = &blocks[b as usize];
        let sl = ctx.sources_local[si as usize];
        let v = ctx.verts[sl as usize] as usize;
        task_total[v] += 1;
        if completed[t] {
            task_done[v] += 1;
            // sources_local lists cut vertices first, so si indexes the
            // cut order of the aggregates while it stays below their count.
            if (si as usize) < ctx.cut_locals.len() {
                done_cut_w[b as usize] += agg.w[b as usize][si as usize];
            } else {
                done_noncut[b as usize] += 1;
            }
        }
    }
    let mut sampled = vec![false; n];
    for v in 0..n {
        sampled[v] = task_total[v] > 0 && task_done[v] == task_total[v];
    }
    let num_sources = sampled.iter().filter(|&&s| s).count();
    if rec.enabled() {
        // A "source" is a sampled vertex whose every block task completed —
        // the same notion `FarnessEstimate::num_sources` reports.
        let scheduled = task_total.iter().filter(|&&t| t > 0).count();
        rec.add(Counter::BfsSources, num_sources as u64);
        rec.add(Counter::BfsSourcesSkipped, (scheduled - num_sources) as u64);
    }

    // Scaled view: expand the intra partial sum per home block by
    // `own(B) / k_B`, then de-bias with the block's structural-offset mass —
    // sources are all survivors, so the raw sums systematically miss the
    // extra hops removed vertices sit beyond their anchors (DESIGN.md §5).
    let factor_of_block: Vec<f64> = blocks
        .iter()
        .enumerate()
        .map(|(b, ctx)| {
            if done_noncut[b] == 0 {
                1.0
            } else {
                (ctx.own as f64) / (done_noncut[b] as f64)
            }
        })
        .collect();
    let offsets = brics_reduce::structural_offsets(records, n);
    let mut offset_of_block = vec![0u64; nb];
    for v in 0..n {
        if red.removed[v] && twin_rep[v].is_none() {
            offset_of_block[homing.vertex_home[v] as usize] += offsets[v] as u64;
        }
    }
    let mut raw = vec![0u64; n];
    let mut scaled = vec![0f64; n];
    for v in 0..n {
        if twin_rep[v].is_some() {
            continue; // copied from the rep below
        }
        if sampled[v] {
            raw[v] = exact[v];
            if let Some(ci) = bct.cut_index_of(v as NodeId) {
                // The rep sees each of its own twins at distance exactly 2.
                raw[v] += 2 * (cut_mult[ci as usize] - 1);
            }
            scaled[v] = raw[v] as f64;
        } else {
            raw[v] = acc[v] + inter[v];
            // An interrupted run can leave a *cut vertex* unsampled; it has
            // no single home block (and received no task mass), so it keeps
            // raw 0 / coverage 0 via the None arm.
            let home = if red.removed[v] {
                Some(homing.vertex_home[v] as usize)
            } else {
                bct.block_of(v as NodeId).map(|b| b as usize)
            };
            scaled[v] = match home {
                Some(b) => {
                    inter[v] as f64
                        + acc[v] as f64 * factor_of_block[b]
                        + offset_of_block[b] as f64
                }
                None => raw[v] as f64,
            };
        }
    }
    for v in 0..n {
        if let Some(rep) = twin_rep[v] {
            raw[v] = raw[rep as usize];
            scaled[v] = scaled[rep as usize];
        }
    }
    // Coverage: sampled vertices saw all n-1 others; everyone else saw the
    // subtree mass behind each *completed* cut task of their home block plus
    // that block's completed non-cut sources. On a complete run this reduces
    // to the exact inter-block mass (n - own(B)) plus k_noncut. Twins copy
    // their rep's coverage (equal distance vectors ⇒ equally covered).
    let mut coverage = vec![0u32; n];
    for v in 0..n {
        if twin_rep[v].is_some() {
            continue;
        }
        if sampled[v] {
            coverage[v] = (n - 1) as u32;
        } else {
            let home = if red.removed[v] {
                Some(homing.vertex_home[v] as usize)
            } else {
                bct.block_of(v as NodeId).map(|b| b as usize)
            };
            if let Some(b) = home {
                coverage[v] = (done_cut_w[b] + done_noncut[b]) as u32;
            }
        }
    }
    for v in 0..n {
        if let Some(rep) = twin_rep[v] {
            coverage[v] = coverage[rep as usize];
        }
    }
    Ok(FarnessEstimate::new(
        raw,
        scaled,
        sampled,
        coverage,
        num_sources,
        start.elapsed(),
        outcome,
    ))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // parallel arrays indexed by vertex id
mod tests {
    use super::*;
    use crate::exact_farness;
    use brics_graph::generators::{
        caterpillar, community_like, cycle_graph, gnm_random_connected, lollipop, path_graph,
        road_like, social_like, star_graph, web_like, ClassParams,
    };
    use brics_graph::traversal::bfs_distances;
    use brics_reduce::reduce;

    /// At a 100 % sampling rate every survivor's estimate must be exact,
    /// and every removed vertex must satisfy
    /// `est(x) + Σ_{y removed, home(y) = home(x)} d(x, y) == exact(x)`:
    /// removed vertices are never BFS sources, so a removed vertex misses
    /// exactly its distances to the removed vertices of its *own* home
    /// block (other blocks' removed vertices flow in exactly through the
    /// BCT weights) — the same semantics as the paper's Facts III.3/III.4.
    fn assert_full_sampling_semantics(g: &CsrGraph, reductions: &ReductionConfig, seed: u64) {
        let n = g.num_nodes();
        let exact = exact_farness(g).unwrap();
        let est = cumulative_estimate(g, reductions, SampleSize::Fraction(1.0), seed).unwrap();
        let red = reduce(g, reductions);
        // Recreate the homing the engine used (same deterministic inputs).
        let mut bi = biconnected_components(&red.graph);
        bi.blocks
            .retain(|b| !b.edges.is_empty() || !red.removed[b.vertices[0] as usize]);
        let bct = BlockCutTree::from_biconnectivity(n, bi);
        let homing = home_records(&red, &bct);
        let removed: Vec<NodeId> =
            (0..n as NodeId).filter(|&v| red.removed[v as usize]).collect();
        // Identical twins of surviving cut vertices are assembled by copying
        // the rep's (exact) estimate; identify them the way the engine does.
        let is_cut_twin = |v: usize| -> bool {
            red.records.iter().any(|r| match r {
                Removal::Identical { node, rep } => {
                    *node as usize == v
                        && !red.removed[*rep as usize]
                        && bct.cut_index_of(*rep).is_some()
                }
                _ => false,
            })
        };
        for v in 0..n {
            if !red.removed[v] {
                assert_eq!(
                    est.raw()[v], exact[v],
                    "survivor {v} (cut or sampled) inexact at 100% sampling"
                );
            } else if is_cut_twin(v) {
                assert_eq!(est.raw()[v], exact[v], "cut twin {v} must copy its rep");
            } else {
                let d = bfs_distances(g, v as NodeId);
                let home = homing.vertex_home[v];
                let same_home_mass: u64 = removed
                    .iter()
                    .filter(|&&y| {
                        homing.vertex_home[y as usize] == home && !is_cut_twin(y as usize)
                    })
                    .map(|&y| d[y as usize] as u64)
                    .sum();
                assert_eq!(
                    est.raw()[v] + same_home_mass,
                    exact[v],
                    "removed vertex {v} off by more than same-home removed mass"
                );
                assert!(est.raw()[v] <= exact[v]);
            }
        }
    }

    #[test]
    fn exactness_on_structured_graphs() {
        for g in [
            path_graph(12),
            cycle_graph(9),
            star_graph(11),
            lollipop(5, 4),
            caterpillar(7, 2),
        ] {
            assert_full_sampling_semantics(&g, &ReductionConfig::all(), 3);
            assert_full_sampling_semantics(&g, &ReductionConfig::none(), 3);
        }
    }

    #[test]
    fn exactness_on_random_graphs() {
        for seed in 0..8 {
            let g = gnm_random_connected(50, 65 + (seed as usize * 7) % 40, seed);
            assert_full_sampling_semantics(&g, &ReductionConfig::all(), seed);
        }
    }

    #[test]
    fn exactness_without_reductions_pure_bcc() {
        // Isolates the BCT machinery: no removals, all vertices survive.
        for seed in 0..6 {
            let g = gnm_random_connected(40, 46, 50 + seed);
            let exact = exact_farness(&g).unwrap();
            let est =
                cumulative_estimate(&g, &ReductionConfig::none(), SampleSize::Fraction(1.0), 1)
                    .unwrap();
            assert_eq!(est.raw(), exact.as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn exactness_on_class_graphs() {
        let params = ClassParams::new(300, 17);
        for g in [
            web_like(params),
            social_like(params),
            community_like(params),
            road_like(params),
        ] {
            assert_full_sampling_semantics(&g, &ReductionConfig::all(), 5);
        }
    }

    #[test]
    fn partial_sampling_bounds() {
        let g = community_like(ClassParams::new(400, 3));
        let exact = exact_farness(&g).unwrap();
        let est =
            cumulative_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(0.3), 11)
                .unwrap();
        for v in 0..g.num_nodes() {
            assert!(
                est.raw()[v] <= exact[v],
                "estimate exceeds exact at {v}: {} > {}",
                est.raw()[v],
                exact[v]
            );
            if est.is_sampled(v as u32) && !reduce(&g, &ReductionConfig::all()).removed[v] {
                assert_eq!(est.raw()[v], exact[v], "sampled vertex {v} not exact");
            }
        }
    }

    #[test]
    fn cut_vertices_always_sampled_and_exact() {
        let g = lollipop(6, 5);
        let exact = exact_farness(&g).unwrap();
        // Tiny sampling rate: only cut vertices are forced in.
        let est = cumulative_estimate(
            &g,
            &ReductionConfig::none(),
            SampleSize::Count(1),
            2,
        )
        .unwrap();
        let bct = BlockCutTree::build(&g);
        for &c in bct.cut_vertices() {
            assert!(est.is_sampled(c), "cut {c} not sampled");
            assert_eq!(est.raw()[c as usize], exact[c as usize], "cut {c} inexact");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = social_like(ClassParams::new(300, 9));
        let a = cumulative_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(0.25), 4)
            .unwrap();
        let b = cumulative_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(0.25), 4)
            .unwrap();
        assert_eq!(a.raw(), b.raw());
        assert_eq!(a.sampled_mask(), b.sampled_mask());
    }

    #[test]
    fn single_vertex_graph() {
        let g = GraphBuilder::new(1).build();
        let est =
            cumulative_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(1.0), 0)
                .unwrap();
        assert_eq!(est.raw(), &[0]);
    }

    #[test]
    fn disconnected_rejected() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let r = cumulative_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(1.0), 0);
        assert!(matches!(r, Err(CentralityError::Disconnected { .. })));
    }

    #[test]
    fn kernel_choice_is_distance_invariant() {
        // Every kernel computes identical distances, so the whole pipeline's
        // output must be bit-identical across kernel configs.
        let g = web_like(ClassParams::new(300, 8));
        let run = |kcfg: &KernelConfig| {
            cumulative_estimate_ctl_with(
                &g,
                &ReductionConfig::all(),
                SampleSize::Fraction(0.5),
                7,
                &RunControl::new(),
                kcfg,
            )
            .unwrap()
        };
        let base = run(&KernelConfig::new(Kernel::TopDown));
        for kernel in [Kernel::Auto, Kernel::Hybrid] {
            let est = run(&KernelConfig::new(kernel));
            assert_eq!(est.raw(), base.raw(), "kernel {kernel:?}");
            assert_eq!(est.sampled_mask(), base.sampled_mask());
            assert_eq!(est.coverage(), base.coverage());
        }
    }

    #[test]
    fn inter_block_mass_is_exact_even_at_tiny_rates() {
        // A path of blocks: farness of any vertex is dominated by
        // inter-block mass, which must be exact regardless of sampling.
        let g = path_graph(40);
        let exact = exact_farness(&g).unwrap();
        let est =
            cumulative_estimate(&g, &ReductionConfig::none(), SampleSize::Count(1), 0).unwrap();
        // In a path every interior vertex is a cut vertex → sampled → exact;
        // ends are in bridge blocks whose only non-cut vertex they are.
        for v in 0..40 {
            assert!(est.raw()[v] <= exact[v]);
        }
        let exact_hits = (0..40).filter(|&v| est.raw()[v] == exact[v]).count();
        assert!(exact_hits >= 38, "only {exact_hits}/40 exact");
    }
}
