//! Orchestration of the Cumulative estimate (paper Algorithm 5), split into
//! the engine's two stages:
//!
//! * [`cumulative_prepare`] — everything query-independent: the homing
//!   fixpoint over the Block-Cut-Tree, cut-twin extraction, block-context
//!   materialization, Phase A (block-local BFS from every cut vertex), the
//!   BCT sweep, and the *cut-mass pass* (the cut-source share of what used
//!   to be Phase B — cut vertices are sources in every query, so their BFS
//!   work is query-independent too). The result is a [`CumulativePrep`].
//! * [`cumulative_query`] — per `(SampleSize, seed)`: draw the non-cut
//!   sources, run their block-local BFS tasks, and assemble the estimate
//!   from the query sums plus the prepared cut mass.
//!
//! Farness sums are integers accumulated order-independently, so splitting
//! the cut tasks out of Phase B keeps complete runs bit-identical to the
//! former interleaved implementation.

use super::aggregate::{sweep, Aggregates, BlockLocalSums};
use super::homing::home_records;
use crate::config::SampleSize;
use crate::engine::{zero_coverage_estimate, ExecutionContext, PrepareConfig, PreparedGraph};
use crate::{CentralityError, FarnessEstimate};
use brics_bicc::{biconnected_components, BlockCutTree};
use brics_graph::telemetry::{
    admit_memory_rec, record_outcome, record_panic, timed, Counter, Metric, Recorder,
};
use brics_graph::traversal::{
    atomic_view, DialBfs, HybridBfs, Kernel, KernelConfig, MsBfs, WorkerGuard, MSBFS_BATCH,
};
use brics_graph::weighted::{build_weighted, edge_weight};
use brics_graph::{
    CsrGraph, Dist, FaultKind, FaultSite, GraphBuilder, NodeId, RunControl, INFINITE_DIST,
    INVALID_NODE,
};
use brics_reduce::{apply_record, ReductionConfig, ReductionResult, Removal};
use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Per-block working context (paper: one BCT block node).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BlockCtx {
    /// Block subgraph over local ids.
    graph: CsrGraph,
    /// Arc-aligned edge weights of the block subgraph, present when the
    /// reduction contracted chains (see `brics-reduce`).
    weights: Option<Vec<u32>>,
    /// Local id → global id.
    verts: Vec<NodeId>,
    /// Whether each local vertex is a cut vertex of the whole graph.
    is_cut_local: Vec<bool>,
    /// Local ids of the block's cut vertices (defines the cut index order
    /// used by the aggregates).
    cut_locals: Vec<NodeId>,
    /// Global ids of the block's cut vertices, aligned with `cut_locals`.
    cut_globals: Vec<NodeId>,
    /// Removal-record indices homed to this block, ascending.
    records: Vec<usize>,
    /// Owned vertex count: non-cut block vertices + homed removed vertices.
    own: u64,
    /// Local ids of the block's non-cut vertices — the population each
    /// query's per-block sampling draws from.
    noncut: Vec<NodeId>,
}

/// The prepared state of the Cumulative estimator: everything Algorithm 5
/// computes that does not depend on the sample size or seed. Owned by
/// [`PreparedGraph`] and consumed by [`cumulative_query`].
///
/// Serializable wholesale: it embeds its *own* post-homing copy of the
/// reduction result (distinct from the top-level one), so persisting it in
/// a prepared-graph artifact restores BCT state with zero recomputation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) struct CumulativePrep {
    bct: BlockCutTree,
    blocks: Vec<BlockCtx>,
    /// The reduction result *after* the homing fixpoint restored any
    /// cross-block records; `red.records` is what block `records` index.
    red: ReductionResult,
    vertex_home: Vec<u32>,
    /// Survivor count of the restored reduction — the population both the
    /// sample-size resolution and the per-block quotas refer to.
    num_survivors: usize,
    cut_mult: Vec<u64>,
    twin_rep: Vec<Option<NodeId>>,
    agg: Aggregates,
    /// Exact inter-block mass every vertex receives from cut sources.
    inter: Vec<u64>,
    /// Per-vertex exact-farness contributions of cut-source tasks (a cut
    /// vertex's farness summed over its incident blocks).
    exact_cut: Vec<u64>,
    /// Per-block subtree weight behind the (always completed) cut tasks.
    done_cut_w: Vec<u64>,
    /// Per-block structural-offset mass of its homed removed vertices.
    offset_of_block: Vec<u64>,
}

/// Puts the vertices of the given records back into the reduced graph:
/// marks them surviving, re-adds their incident edges, and drops the
/// records. Only multi-anchor records (parallel chains, redundant nodes)
/// can straddle blocks, and both carry enough information to rebuild their
/// edges exactly.
fn restore_records(red: &mut ReductionResult, indices: &[usize]) {
    use std::collections::BTreeSet;
    let idx: BTreeSet<usize> = indices.iter().copied().collect();
    // Rebuild as weighted triples so contracted edges keep their weights;
    // restored edges are unit-weight (they are original graph edges). A
    // restored contracted chain may coexist with its own weighted edge —
    // harmless, the edge parallels the path at equal length.
    let mut triples: Vec<(NodeId, NodeId, u32)> = match &red.weights {
        Some(w) => red
            .graph
            .edges()
            .map(|(u, v)| (u, v, edge_weight(&red.graph, w, u, v).unwrap()))
            .collect(),
        None => red.graph.edges().map(|(u, v)| (u, v, 1)).collect(),
    };
    for &i in &idx {
        match &red.records[i] {
            Removal::Chain { u, v, nodes, .. } => {
                debug_assert_ne!(u, v, "single-anchor chains cannot straddle blocks");
                let mut prev = *u;
                for &x in nodes {
                    triples.push((prev, x, 1));
                    red.removed[x as usize] = false;
                    prev = x;
                }
                triples.push((prev, *v, 1));
            }
            Removal::Redundant { node, neighbors } => {
                for &w in neighbors {
                    triples.push((*node, w, 1));
                }
                red.removed[*node as usize] = false;
            }
            Removal::Identical { .. } => {
                unreachable!("identical records have one anchor and never straddle")
            }
        }
    }
    let weighted = red.weights.is_some();
    let (g, w) = build_weighted(red.graph.num_nodes(), &triples);
    red.graph = g;
    red.weights = weighted.then_some(w);
    let mut j = 0usize;
    red.records.retain(|_| {
        let keep = !idx.contains(&j);
        j += 1;
        keep
    });
}

/// Runs the full BRICS Cumulative pipeline.
pub fn cumulative_estimate(
    g: &CsrGraph,
    reductions: &ReductionConfig,
    sample: SampleSize,
    seed: u64,
) -> Result<FarnessEstimate, CentralityError> {
    cumulative_estimate_in(g, reductions, sample, seed, &ExecutionContext::new())
}

/// [`cumulative_estimate`] under an [`ExecutionContext`].
///
/// Builds a [`PreparedGraph`] (reduction, BCT, Phase A, sweep, cut mass)
/// and runs one query against it; repeated queries should hold on to the
/// artifact instead ([`PreparedGraph::cumulative`]).
///
/// Interruption granularity: the prepare stage is all-or-nothing — a
/// deadline or cancellation hit anywhere in it degrades to the
/// zero-coverage estimate (trivially sound: every lower bound becomes
/// `n − 1`). In the query stage each `(block, source)` task either lands
/// completely or not at all, and per-vertex coverage counts exactly the
/// completed tasks of the vertex's home block.
///
/// The kernel choice in the context applies to unweighted blocks in both
/// stages; blocks whose edges carry contracted-chain weights always use
/// Dial's bucket queue (the direction-optimizing heuristic is meaningless
/// under non-unit weights). Every kernel computes identical distances, so
/// the estimate is bit-identical across kernels and recorders.
pub fn cumulative_estimate_in<R: Recorder>(
    g: &CsrGraph,
    reductions: &ReductionConfig,
    sample: SampleSize,
    seed: u64,
    ctx: &ExecutionContext<'_, R>,
) -> Result<FarnessEstimate, CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    let start = Instant::now();
    let cfg = PrepareConfig {
        reductions: *reductions,
        use_bcc: true,
        reorder: false,
    };
    match PreparedGraph::build_with(g, cfg, ctx) {
        Ok(p) => p.cumulative(sample, seed, ctx),
        Err(CentralityError::Interrupted { outcome }) => {
            Ok(zero_coverage_estimate(n, start, outcome))
        }
        Err(e) => Err(e),
    }
}

/// Runs the block-local single-source distances for one task: Dial's
/// bucket queue when the block carries contracted-chain weights, the
/// direction-optimizing kernel otherwise (unless the config pins the
/// classic top-down BFS, which Dial's unweighted fast path is).
fn block_distances<'a>(
    dial: &'a mut DialBfs,
    hybrid: &'a mut HybridBfs,
    ctx: &BlockCtx,
    source: NodeId,
    kernel: Kernel,
) -> &'a [Dist] {
    if ctx.weights.is_none() && kernel != Kernel::TopDown {
        hybrid.run_with(&ctx.graph, source, |_, _| {});
        &hybrid.distances()[..ctx.verts.len()]
    } else {
        dial.run_with(&ctx.graph, ctx.weights.as_deref(), source, |_, _| {});
        &dial.distances()[..ctx.verts.len()]
    }
}

/// The prepare stage (Algorithm 4 + the query-independent parts of
/// Algorithm 5). Takes its own copy of the reduction result because the
/// homing fixpoint may restore cross-block records into it.
///
/// All-or-nothing under the control: interruption anywhere returns
/// [`CentralityError::Interrupted`] — there is no sound partial artifact.
pub(crate) fn cumulative_prepare<R: Recorder>(
    n: usize,
    mut red: ReductionResult,
    ctl: &RunControl,
    kcfg: &KernelConfig,
    rec: &R,
) -> Result<CumulativePrep, CentralityError> {
    let kcfg = *kcfg;
    // Home every record; records whose anchors straddle blocks (paper Fact
    // III.5) are *restored* into the reduced graph — sound because every
    // removal's validity argument is local, and convergent because
    // restoration only merges blocks. Typically 0 or 1 extra rounds.
    let (bct, homing, homing_rounds) = timed(rec, "cumulative.homing", || {
        let mut rounds = 0u64;
        loop {
            rounds += 1;
            let mut bi = biconnected_components(&red.graph);
            // Removed vertices are isolated in the reduced CSR; drop their
            // synthetic singleton blocks (survivor singletons stay).
            bi.blocks
                .retain(|b| !b.edges.is_empty() || !red.removed[b.vertices[0] as usize]);
            let bct = BlockCutTree::from_biconnectivity(n, bi);
            let homing = home_records(&red, &bct);
            if homing.cross_records.is_empty() {
                break (bct, homing, rounds);
            }
            restore_records(&mut red, &homing.cross_records);
        }
    });
    if rec.enabled() {
        rec.add(Counter::CumulativeHomingRounds, homing_rounds);
        rec.add(Counter::BctBlocks, bct.num_blocks() as u64);
        rec.add(Counter::BctCutVertices, bct.num_cut_vertices() as u64);
    }
    // Identical twins of *cut vertices* cannot be homed to a single block:
    // d(x, twin) = d(x, rep) everywhere, and the rep spans several blocks.
    // They are pulled out of block homing and modelled as extra multiplicity
    // on the cut's BCT node (distance 0 from the cut for every outside
    // vertex; the rep itself sees each of its twins at distance exactly 2,
    // added at assembly). `twin_rep[v]` marks such vertices; their final
    // estimate is a verbatim copy of the rep's (farness equality, §III-A).
    let mut homing = homing;
    let mut cut_mult = vec![1u64; bct.num_cut_vertices()];
    let mut twin_rep: Vec<Option<NodeId>> = vec![None; n];
    let mut is_twin_record = vec![false; red.records.len()];
    for (i, rec) in red.records.iter().enumerate() {
        if let Removal::Identical { node, rep } = rec {
            if !red.removed[*rep as usize] {
                if let Some(ci) = bct.cut_index_of(*rep) {
                    cut_mult[ci as usize] += 1;
                    twin_rep[*node as usize] = Some(*rep);
                    is_twin_record[i] = true;
                }
            }
        }
    }
    for list in &mut homing.block_records {
        list.retain(|&ri| !is_twin_record[ri]);
    }
    let num_survivors = red.num_surviving();

    // ---- Materialize block contexts. ----
    let mut g2l = vec![INVALID_NODE; n];
    let nb = bct.num_blocks();
    let mut removed_per_block = vec![0u64; nb];
    for (b, recs) in homing.block_records.iter().enumerate() {
        removed_per_block[b] =
            recs.iter().map(|&ri| red.records[ri].removed_count() as u64).sum();
    }
    let mut blocks = Vec::with_capacity(nb);
    for (b, blk) in bct.blocks().iter().enumerate() {
        let verts = blk.vertices.clone();
        for (l, &v) in verts.iter().enumerate() {
            g2l[v as usize] = l as NodeId;
        }
        let (graph, block_weights) = match &red.weights {
            None => {
                let mut builder = GraphBuilder::with_capacity(verts.len(), blk.edges.len());
                for &(u, v) in &blk.edges {
                    builder.add_edge(g2l[u as usize], g2l[v as usize]);
                }
                (builder.build(), None)
            }
            Some(w) => {
                let triples: Vec<(NodeId, NodeId, u32)> = blk
                    .edges
                    .iter()
                    .map(|&(u, v)| {
                        (
                            g2l[u as usize],
                            g2l[v as usize],
                            edge_weight(&red.graph, w, u, v).expect("block edge missing"),
                        )
                    })
                    .collect();
                let (g, lw) = build_weighted(verts.len(), &triples);
                // Blocks untouched by contraction run the plain-BFS path.
                let lw = lw.iter().any(|&x| x != 1).then_some(lw);
                (g, lw)
            }
        };
        let is_cut_local: Vec<bool> = verts.iter().map(|&v| bct.is_cut_vertex(v)).collect();
        let cut_locals: Vec<NodeId> = (0..verts.len() as NodeId)
            .filter(|&l| is_cut_local[l as usize])
            .collect();
        let cut_globals: Vec<NodeId> =
            cut_locals.iter().map(|&l| verts[l as usize]).collect();
        let noncut: Vec<NodeId> = (0..verts.len() as NodeId)
            .filter(|&l| !is_cut_local[l as usize])
            .collect();
        for &v in &verts {
            g2l[v as usize] = INVALID_NODE;
        }
        blocks.push(BlockCtx {
            graph,
            weights: block_weights,
            verts,
            is_cut_local,
            cut_locals,
            cut_globals,
            records: homing.block_records[b].clone(),
            own: (blk.vertices.len() as u64
                - bct.blocks()[b].vertices.iter().filter(|&&v| bct.is_cut_vertex(v)).count()
                    as u64)
                + removed_per_block[b],
            noncut,
        });
    }
    let records: &[Removal] = &red.records;

    // ---- Phase A: block-local BFS from every cut vertex. ----
    // Guarded per block: the sweep needs *every* block's cut data, so an
    // interruption here aborts the whole prepare.
    // Per block: each cut vertex's subtree distance sum, plus the dense
    // cut-to-cut distance matrix.
    type CutData = (Vec<u64>, Vec<Vec<u32>>);
    let guard_a = WorkerGuard::new(ctl);
    let phase_a: Vec<Option<CutData>> = timed(rec, "cumulative.phase_a", || {
        blocks
            .par_iter()
            .map_init(
            || (DialBfs::new(64), HybridBfs::with_params(64, kcfg.params), vec![INFINITE_DIST; n]),
            |(bfs, hyb, gdist), ctx| {
                let out = guard_a.run_source(ctx.verts[0], || {
                let nc = ctx.cut_locals.len();
                let mut sdo = Vec::with_capacity(nc);
                let mut cd = vec![vec![0u32; nc]; nc];
                for (ci, &cl) in ctx.cut_locals.iter().enumerate() {
                    let dl = block_distances(bfs, hyb, ctx, cl, kcfg.kernel);
                    for (cj, &cl2) in ctx.cut_locals.iter().enumerate() {
                        cd[ci][cj] = dl[cl2 as usize];
                    }
                    let mut s = 0u64;
                    for (l, &d) in dl.iter().enumerate() {
                        if !ctx.is_cut_local[l] {
                            s += d as u64;
                        }
                    }
                    if !ctx.records.is_empty() {
                        for (l, &gid) in ctx.verts.iter().enumerate() {
                            gdist[gid as usize] = dl[l];
                        }
                        for &ri in ctx.records.iter().rev() {
                            apply_record(&records[ri], gdist);
                        }
                        for &ri in &ctx.records {
                            for x in records[ri].removed_nodes() {
                                let d = gdist[x as usize];
                                debug_assert_ne!(d, INFINITE_DIST);
                                s += d as u64;
                                gdist[x as usize] = INFINITE_DIST;
                            }
                        }
                        for &gid in &ctx.verts {
                            gdist[gid as usize] = INFINITE_DIST;
                        }
                    }
                    sdo.push(s);
                }
                (sdo, cd)
                });
                if out.is_some() && rec.enabled() {
                    // One block-local BFS per cut vertex of this block.
                    let nc = ctx.cut_locals.len() as u64;
                    rec.add(Counter::VerticesVisited, nc * ctx.verts.len() as u64);
                    rec.add(Counter::EdgesScanned, nc * ctx.graph.num_arcs() as u64);
                }
                out
            },
            )
            .collect()
    });
    let outcome_a = guard_a.finish().map_err(|p| {
        record_panic(rec, &p.detail);
        p
    })?;
    if rec.enabled() {
        rec.add(Counter::CumulativePhaseATasks, phase_a.iter().flatten().count() as u64);
    }
    record_outcome(rec, outcome_a, "cumulative phase A (cut-vertex BFS)");
    if !outcome_a.is_complete() {
        return Err(CentralityError::Interrupted { outcome: outcome_a });
    }
    let phase_a: Vec<(Vec<u64>, Vec<Vec<u32>>)> =
        phase_a.into_iter().map(Option::unwrap).collect();

    // ---- The BCT sweep (Step 3). ----
    let cuts_of_block: Vec<Vec<u32>> = blocks.iter().map(|c| c.cut_globals.clone()).collect();
    let sdo: Vec<Vec<u64>> = phase_a.iter().map(|(s, _)| s.clone()).collect();
    let cutdist: Vec<Vec<Vec<u32>>> = phase_a.into_iter().map(|(_, c)| c).collect();
    let own: Vec<u64> = blocks.iter().map(|c| c.own).collect();
    let agg: Aggregates = timed(rec, "cumulative.sweep", || {
        sweep(
            &bct,
            &BlockLocalSums {
                cuts_of_block: &cuts_of_block,
                sdo: &sdo,
                cutdist: &cutdist,
                own: &own,
                cut_mult: &cut_mult,
            },
        )
    });
    #[cfg(debug_assertions)]
    for (b, own_b) in own.iter().enumerate() {
        debug_assert_eq!(
            own_b + agg.w[b].iter().sum::<u64>(),
            n as u64,
            "weight partition broken at block {b}"
        );
    }

    // ---- Cut-mass pass: the cut-source share of Phase B. ----
    // Cut vertices are sources in *every* query (Algorithm 5 forces them
    // in), so their block-local BFS tasks — the exact inter-block mass every
    // vertex receives, and the cuts' own exact farness — are prepared here
    // once. Each (block, cut) task is one interruption unit.
    let mut inter = vec![0u64; n];
    let mut exact_cut = vec![0u64; n];
    let inter_a: &[AtomicU64] = atomic_view(&mut inter);
    let exact_a: &[AtomicU64] = atomic_view(&mut exact_cut);
    let cut_tasks: Vec<(u32, u32)> = blocks
        .iter()
        .enumerate()
        .flat_map(|(b, ctx)| (0..ctx.cut_locals.len() as u32).map(move |ci| (b as u32, ci)))
        .collect();
    let guard_c = WorkerGuard::new(ctl);
    let completed: Vec<bool> = timed(rec, "cumulative.cut_mass", || {
        cut_tasks
            .par_iter()
            .map_init(
        || (DialBfs::new(64), HybridBfs::with_params(64, kcfg.params), vec![INFINITE_DIST; n]),
        |(bfs, hyb, gdist), &(b, ci)| {
            let ctx = &blocks[b as usize];
            let sl = ctx.cut_locals[ci as usize];
            let s_global = ctx.verts[sl as usize];
            let started = if rec.enabled() { Some(Instant::now()) } else { None };
            let done = guard_c.run_source(s_global, || {
                run_block_task(
                    bfs, hyb, gdist, ctx, sl, s_global, Some(ci as usize),
                    &agg, records, b as usize, inter_a, None, exact_a, kcfg.kernel,
                )
            })
            .is_some();
            if done && rec.enabled() {
                if let Some(started) = started {
                    let end = Instant::now();
                    rec.observe(
                        Metric::SourceBfsNanos,
                        end.duration_since(started).as_nanos() as u64,
                    );
                    if rec.trace_enabled() {
                        rec.trace_span("bfs.source", started, end);
                    }
                }
                rec.add(Counter::VerticesVisited, ctx.verts.len() as u64);
                rec.add(Counter::EdgesScanned, ctx.graph.num_arcs() as u64);
            }
            done
        },
            )
            .collect()
    });
    let outcome_c = guard_c.finish().map_err(|p| {
        record_panic(rec, &p.detail);
        p
    })?;
    if rec.enabled() {
        // Kept under the Phase-B task counter: together with each query's
        // non-cut tasks this preserves the counter's historical meaning.
        rec.add(
            Counter::CumulativePhaseBTasks,
            completed.iter().filter(|&&c| c).count() as u64,
        );
    }
    record_outcome(rec, outcome_c, "cumulative cut-mass pass (cut-source BFS)");
    if !outcome_c.is_complete() {
        return Err(CentralityError::Interrupted { outcome: outcome_c });
    }
    let done_cut_w: Vec<u64> = (0..nb).map(|b| agg.w[b].iter().sum()).collect();

    // Per-block structural-offset mass for the scaled view's de-bias term.
    let offsets = brics_reduce::structural_offsets(records, n);
    let mut offset_of_block = vec![0u64; nb];
    for v in 0..n {
        if red.removed[v] && twin_rep[v].is_none() {
            offset_of_block[homing.vertex_home[v] as usize] += offsets[v] as u64;
        }
    }
    let vertex_home = homing.vertex_home;
    Ok(CumulativePrep {
        bct,
        blocks,
        red,
        vertex_home,
        num_survivors,
        cut_mult,
        twin_rep,
        agg,
        inter,
        exact_cut,
        done_cut_w,
        offset_of_block,
    })
}

/// Applies the `estimate.phase_b` failpoint for one source of a batched
/// unit. [`WorkerGuard::run_source`] does this for the unit's first source;
/// the batch path calls this for the remaining members so per-source fault
/// plans keep firing under batching (the caller's `catch_unwind` turns the
/// panic into the whole batch failing, which is the batch isolation
/// contract).
fn apply_phase_b_fault(ctl: &RunControl, s: NodeId) {
    match ctl.fault_apply(FaultSite::EstimatePhaseB, u64::from(s)) {
        Some(FaultKind::Panic) => {
            panic!("injected worker panic (estimate.phase_b) on source {s}")
        }
        Some(FaultKind::IoError) => {
            panic!("injected i/o error (estimate.phase_b) on source {s}")
        }
        _ => {}
    }
}

/// One block-local BFS task: source `sl` (local) in block `ctx`. Accumulates
/// intra mass into `acc_a` (non-cut sources), inter mass into `inter_a`
/// (cut sources, `cut_index = Some(j)`), and the source's exact-farness
/// contribution into `exact_a`. Shared verbatim between the prepare stage's
/// cut-mass pass and the query stage's non-cut sweep so both produce the
/// sums the former interleaved Phase B did.
#[allow(clippy::too_many_arguments)]
fn run_block_task(
    bfs: &mut DialBfs,
    hyb: &mut HybridBfs,
    gdist: &mut [Dist],
    ctx: &BlockCtx,
    sl: NodeId,
    s_global: NodeId,
    cut_index: Option<usize>,
    agg: &Aggregates,
    records: &[Removal],
    b: usize,
    inter_a: &[AtomicU64],
    acc_a: Option<&[AtomicU64]>,
    exact_a: &[AtomicU64],
    kernel: Kernel,
) {
    let dl = block_distances(bfs, hyb, ctx, sl, kernel);
    aggregate_block_task(
        dl, gdist, ctx, sl, s_global, cut_index, agg, records, b, inter_a, acc_a, exact_a,
    );
}

/// The aggregation half of [`run_block_task`], over an already-computed
/// block-local distance row `dl`. Split out so the batched MS-BFS path can
/// feed 64 rows from one traversal through the identical accumulation.
#[allow(clippy::too_many_arguments)]
fn aggregate_block_task(
    dl: &[Dist],
    gdist: &mut [Dist],
    ctx: &BlockCtx,
    sl: NodeId,
    s_global: NodeId,
    cut_index: Option<usize>,
    agg: &Aggregates,
    records: &[Removal],
    b: usize,
    inter_a: &[AtomicU64],
    acc_a: Option<&[AtomicU64]>,
    exact_a: &[AtomicU64],
) {
    // Cut-source constants for the inter terms of this source.
    let is_cut_source = cut_index.is_some();
    let (dc, wc) = match cut_index {
        Some(j) => (agg.d[b][j], agg.w[b][j]),
        None => (0, 0),
    };

    let mut own_sum = 0u64;
    for (l, &d) in dl.iter().enumerate() {
        if ctx.is_cut_local[l] {
            continue;
        }
        let gid = ctx.verts[l] as usize;
        let d = d as u64;
        own_sum += d;
        if is_cut_source {
            inter_a[gid].fetch_add(dc + wc * d, Ordering::Relaxed);
        } else if d > 0 {
            acc_a.unwrap()[gid].fetch_add(d, Ordering::Relaxed);
        }
    }
    if !ctx.records.is_empty() {
        for (l, &gid) in ctx.verts.iter().enumerate() {
            gdist[gid as usize] = dl[l];
        }
        for &ri in ctx.records.iter().rev() {
            apply_record(&records[ri], gdist);
        }
        for &ri in &ctx.records {
            for x in records[ri].removed_nodes() {
                let d = gdist[x as usize] as u64;
                own_sum += d;
                if is_cut_source {
                    inter_a[x as usize].fetch_add(dc + wc * d, Ordering::Relaxed);
                } else {
                    acc_a.unwrap()[x as usize].fetch_add(d, Ordering::Relaxed);
                }
                gdist[x as usize] = INFINITE_DIST;
            }
        }
        for &gid in &ctx.verts {
            gdist[gid as usize] = INFINITE_DIST;
        }
    }
    // Inter part of this source's own (exact) farness.
    let mut inter_part = 0u64;
    for (j, &cl) in ctx.cut_locals.iter().enumerate() {
        if cl == sl {
            continue; // a cut vertex skips its own subtree term
        }
        inter_part += agg.d[b][j] + agg.w[b][j] * dl[cl as usize] as u64;
    }
    exact_a[s_global as usize].fetch_add(own_sum + inter_part, Ordering::Relaxed);
}

/// The query stage: draw the non-cut sources for `(sample, seed)`, run
/// their block-local tasks, assemble raw / scaled / coverage from the query
/// sums plus the prepared cut mass.
#[allow(clippy::too_many_arguments)]
pub(crate) fn cumulative_query<R: Recorder>(
    n: usize,
    prep: &CumulativePrep,
    sample: SampleSize,
    seed: u64,
    admit_bytes: u64,
    ctl: &RunControl,
    kcfg: &KernelConfig,
    rec: &R,
) -> Result<FarnessEstimate, CentralityError> {
    let kcfg = *kcfg;
    admit_memory_rec(ctl, admit_bytes, rec)?;
    let k_total = sample.resolve(prep.num_survivors);
    if k_total == 0 {
        return Err(CentralityError::NoSamples);
    }
    let start = Instant::now();
    let bct = &prep.bct;
    let blocks = &prep.blocks;
    let agg = &prep.agg;
    let records: &[Removal] = &prep.red.records;
    let nb = blocks.len();

    // Per-block sampling (Algorithm 5 line 9: k_i = ⌈k·|B_i|/|G_R|⌉ −
    // |cuts|), drawn from one seeded stream over blocks in order — the same
    // stream the interleaved implementation consumed, so identical seeds
    // pick identical sources.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tasks: Vec<(u32, NodeId)> = Vec::new();
    for (b, ctx) in blocks.iter().enumerate() {
        let quota = ((k_total as f64) * (ctx.verts.len() as f64)
            / (prep.num_survivors as f64))
            .ceil() as usize;
        let k_noncut = quota.saturating_sub(ctx.cut_locals.len()).min(ctx.noncut.len());
        if k_noncut > 0 {
            let mut picked: Vec<NodeId> = index_sample(&mut rng, ctx.noncut.len(), k_noncut)
                .into_iter()
                .map(|i| ctx.noncut[i])
                .collect();
            picked.sort_unstable();
            tasks.extend(picked.into_iter().map(|sl| (b as u32, sl)));
        }
    }

    // ---- Non-cut sweep (the per-query share of Phase B). ----
    let mut acc = vec![0u64; n]; // intra partial sums (non-cut sources)
    let mut exact_q = vec![0u64; n]; // per-source exact farness (non-cut)
    let acc_a: &[AtomicU64] = atomic_view(&mut acc);
    let exact_a: &[AtomicU64] = atomic_view(&mut exact_q);

    // Each scheduling *unit* is one interruption granule: its intra mass,
    // reconstruction mass and exact-farness contributions land atomically
    // with respect to the control (checked before the unit starts, never
    // mid-unit). This is the `estimate.phase_b` failpoint, not
    // `bfs.source` — block tasks are not plain BFS sweeps.
    //
    // A unit is normally one (block, source) task. When a block's group of
    // sampled sources is large enough for the bit-parallel engine (see
    // [`KernelConfig::msbfs_applies`]) and the block is unweighted, the
    // group is cut into MS-BFS batches of up to [`MSBFS_BATCH`] sources:
    // one traversal computes all their distance rows, and each row feeds
    // the identical per-task aggregation. Coverage is accounted per batch —
    // all of a batch's tasks complete, or none do. Worker memory grows by
    // `64 × block_n` distances for the row store.
    enum PhaseBUnit {
        /// Index into `tasks`.
        Task(usize),
        /// Contiguous index range into `tasks`, all in one block.
        Batch(std::ops::Range<usize>),
    }
    let threads = rayon::current_num_threads();
    let mut units: Vec<PhaseBUnit> = Vec::new();
    {
        let mut i = 0;
        while i < tasks.len() {
            let b = tasks[i].0;
            let mut j = i + 1;
            while j < tasks.len() && tasks[j].0 == b {
                j += 1;
            }
            let ctx = &blocks[b as usize];
            if ctx.weights.is_none() && kcfg.msbfs_applies(j - i, threads) {
                let mut s = i;
                while s < j {
                    let e = (s + MSBFS_BATCH).min(j);
                    units.push(PhaseBUnit::Batch(s..e));
                    s = e;
                }
            } else {
                units.extend((i..j).map(PhaseBUnit::Task));
            }
            i = j;
        }
    }
    let guard = WorkerGuard::with_site(ctl, FaultSite::EstimatePhaseB);
    let empty_inter: [AtomicU64; 0] = [];
    if rec.enabled() {
        // Cut vertices are implicit sources of every query (their tasks ran
        // at prepare time); counting them alongside this query's non-cut
        // tasks keeps done/planned consistent with `BfsSources` accounting.
        rec.add(
            Counter::BfsSourcesPlanned,
            (bct.num_cut_vertices() + tasks.len()) as u64,
        );
    }
    let unit_done: Vec<bool> = timed(rec, "cumulative.phase_b", || {
        units
            .par_iter()
            .map_init(
        || {
            (
                DialBfs::new(64),
                HybridBfs::with_params(64, kcfg.params),
                vec![INFINITE_DIST; n],
                MsBfs::new(0),
            )
        },
        |(bfs, hyb, gdist, ms), unit| match *unit {
            PhaseBUnit::Task(t) => {
                let (b, sl) = tasks[t];
                let ctx = &blocks[b as usize];
                let s_global = ctx.verts[sl as usize];
                let started = if rec.enabled() { Some(Instant::now()) } else { None };
                let done = guard.run_source(s_global, || {
                    run_block_task(
                        bfs, hyb, gdist, ctx, sl, s_global, None,
                        agg, records, b as usize, &empty_inter, Some(acc_a), exact_a, kcfg.kernel,
                    )
                })
                .is_some();
                if done && rec.enabled() {
                    if let Some(started) = started {
                        let end = Instant::now();
                        rec.observe(
                            Metric::SourceBfsNanos,
                            end.duration_since(started).as_nanos() as u64,
                        );
                        if rec.trace_enabled() {
                            rec.trace_span("bfs.source", started, end);
                        }
                    }
                    rec.add(Counter::VerticesVisited, ctx.verts.len() as u64);
                    rec.add(Counter::EdgesScanned, ctx.graph.num_arcs() as u64);
                }
                done
            }
            PhaseBUnit::Batch(ref r) => {
                let b = tasks[r.start].0 as usize;
                let ctx = &blocks[b];
                let locals: Vec<NodeId> = tasks[r.clone()].iter().map(|&(_, sl)| sl).collect();
                let first_global = ctx.verts[locals[0] as usize];
                let done = guard.run_source(first_global, || {
                    // The guard applied the failpoint for the first source;
                    // plans aimed at any other member of the batch fire
                    // here, widening the blast radius to the whole batch.
                    for &sl in &locals[1..] {
                        apply_phase_b_fault(ctl, ctx.verts[sl as usize]);
                    }
                    if rec.enabled() {
                        rec.incr(Counter::BatchesMsbfs);
                    }
                    ms.set_row_recording(true);
                    // The batch runs uncontrolled: like every other phase-B
                    // unit, interruption is checked at pickup and the unit
                    // itself is atomic.
                    let rows = ms
                        .run_batch_ctl_rec(
                            &ctx.graph,
                            &locals,
                            &RunControl::new(),
                            false,
                            rec,
                            |_, _, _| {},
                        )
                        .expect("uncontrolled MS-BFS batch cannot be interrupted");
                    debug_assert_eq!(rows.len(), locals.len());
                    for (i, &sl) in locals.iter().enumerate() {
                        let s_global = ctx.verts[sl as usize];
                        let dl = &ms.dist_row(i)[..ctx.verts.len()];
                        aggregate_block_task(
                            dl, gdist, ctx, sl, s_global, None,
                            agg, records, b, &empty_inter, Some(acc_a), exact_a,
                        );
                    }
                })
                .is_some();
                if done && rec.enabled() {
                    rec.add(
                        Counter::VerticesVisited,
                        (ctx.verts.len() * locals.len()) as u64,
                    );
                    rec.add(
                        Counter::EdgesScanned,
                        (ctx.graph.num_arcs() * locals.len()) as u64,
                    );
                }
                done
            }
        },
            )
            .collect()
    });
    let mut completed = vec![false; tasks.len()];
    for (u, unit) in units.iter().enumerate() {
        if unit_done[u] {
            match unit {
                PhaseBUnit::Task(t) => completed[*t] = true,
                PhaseBUnit::Batch(r) => completed[r.clone()].fill(true),
            }
        }
    }
    let outcome = guard.finish().map_err(|p| {
        record_panic(rec, &p.detail);
        p
    })?;
    if rec.enabled() {
        rec.add(
            Counter::CumulativePhaseBTasks,
            completed.iter().filter(|&&c| c).count() as u64,
        );
    }
    record_outcome(rec, outcome, "cumulative phase B (sampled-source BFS)");

    // ---- Assemble farness values (Step 4). ----
    // Cut vertices are sampled in every query: their tasks all completed
    // during prepare. A non-cut pick has exactly one task, completed or
    // not. Per block, tally the completed non-cut tasks for the scaling
    // factor and partial-coverage accounting (the cut-task subtree weights
    // were tallied at prepare time).
    let mut sampled = vec![false; n];
    for &c in bct.cut_vertices() {
        sampled[c as usize] = true;
    }
    let mut done_noncut = vec![0u64; nb];
    for (t, &(b, sl)) in tasks.iter().enumerate() {
        if completed[t] {
            sampled[blocks[b as usize].verts[sl as usize] as usize] = true;
            done_noncut[b as usize] += 1;
        }
    }
    let num_sources = sampled.iter().filter(|&&s| s).count();
    if rec.enabled() {
        // A "source" is a sampled vertex whose every block task completed —
        // the same notion `FarnessEstimate::num_sources` reports.
        let scheduled = bct.num_cut_vertices() + tasks.len();
        rec.add(Counter::BfsSources, num_sources as u64);
        rec.add(Counter::BfsSourcesSkipped, (scheduled - num_sources) as u64);
    }

    // Scaled view: expand the intra partial sum per home block by
    // `own(B) / k_B`, then de-bias with the block's structural-offset mass —
    // sources are all survivors, so the raw sums systematically miss the
    // extra hops removed vertices sit beyond their anchors (DESIGN.md §5).
    let factor_of_block: Vec<f64> = blocks
        .iter()
        .enumerate()
        .map(|(b, ctx)| {
            if done_noncut[b] == 0 {
                1.0
            } else {
                (ctx.own as f64) / (done_noncut[b] as f64)
            }
        })
        .collect();
    let mut raw = vec![0u64; n];
    let mut scaled = vec![0f64; n];
    for v in 0..n {
        if prep.twin_rep[v].is_some() {
            continue; // copied from the rep below
        }
        if sampled[v] {
            raw[v] = prep.exact_cut[v] + exact_q[v];
            if let Some(ci) = bct.cut_index_of(v as NodeId) {
                // The rep sees each of its own twins at distance exactly 2.
                raw[v] += 2 * (prep.cut_mult[ci as usize] - 1);
            }
            scaled[v] = raw[v] as f64;
        } else {
            raw[v] = acc[v] + prep.inter[v];
            let home = if prep.red.removed[v] {
                Some(prep.vertex_home[v] as usize)
            } else {
                bct.block_of(v as NodeId).map(|b| b as usize)
            };
            scaled[v] = match home {
                Some(b) => {
                    prep.inter[v] as f64
                        + acc[v] as f64 * factor_of_block[b]
                        + prep.offset_of_block[b] as f64
                }
                None => raw[v] as f64,
            };
        }
    }
    for v in 0..n {
        if let Some(rep) = prep.twin_rep[v] {
            raw[v] = raw[rep as usize];
            scaled[v] = scaled[rep as usize];
        }
    }
    // Coverage: sampled vertices saw all n-1 others; everyone else saw the
    // subtree mass behind each cut task of their home block (all prepared)
    // plus that block's completed non-cut sources. On a complete run this
    // reduces to the exact inter-block mass (n - own(B)) plus k_noncut.
    // Twins copy their rep's coverage (equal distance vectors ⇒ equally
    // covered).
    let mut coverage = vec![0u32; n];
    for v in 0..n {
        if prep.twin_rep[v].is_some() {
            continue;
        }
        if sampled[v] {
            coverage[v] = (n - 1) as u32;
        } else {
            let home = if prep.red.removed[v] {
                Some(prep.vertex_home[v] as usize)
            } else {
                bct.block_of(v as NodeId).map(|b| b as usize)
            };
            if let Some(b) = home {
                coverage[v] = (prep.done_cut_w[b] + done_noncut[b]) as u32;
            }
        }
    }
    for v in 0..n {
        if let Some(rep) = prep.twin_rep[v] {
            coverage[v] = coverage[rep as usize];
        }
    }
    Ok(FarnessEstimate::new(
        raw,
        scaled,
        sampled,
        coverage,
        num_sources,
        start.elapsed(),
        outcome,
    ))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // parallel arrays indexed by vertex id
mod tests {
    use super::*;
    use crate::exact_farness;
    use brics_graph::generators::{
        caterpillar, community_like, cycle_graph, gnm_random_connected, lollipop, path_graph,
        road_like, social_like, star_graph, web_like, ClassParams,
    };
    use brics_graph::traversal::bfs_distances;
    use brics_reduce::reduce;

    /// At a 100 % sampling rate every survivor's estimate must be exact,
    /// and every removed vertex must satisfy
    /// `est(x) + Σ_{y removed, home(y) = home(x)} d(x, y) == exact(x)`:
    /// removed vertices are never BFS sources, so a removed vertex misses
    /// exactly its distances to the removed vertices of its *own* home
    /// block (other blocks' removed vertices flow in exactly through the
    /// BCT weights) — the same semantics as the paper's Facts III.3/III.4.
    fn assert_full_sampling_semantics(g: &CsrGraph, reductions: &ReductionConfig, seed: u64) {
        let n = g.num_nodes();
        let exact = exact_farness(g).unwrap();
        let est = cumulative_estimate(g, reductions, SampleSize::Fraction(1.0), seed).unwrap();
        let red = reduce(g, reductions);
        // Recreate the homing the engine used (same deterministic inputs).
        let mut bi = biconnected_components(&red.graph);
        bi.blocks
            .retain(|b| !b.edges.is_empty() || !red.removed[b.vertices[0] as usize]);
        let bct = BlockCutTree::from_biconnectivity(n, bi);
        let homing = home_records(&red, &bct);
        let removed: Vec<NodeId> =
            (0..n as NodeId).filter(|&v| red.removed[v as usize]).collect();
        // Identical twins of surviving cut vertices are assembled by copying
        // the rep's (exact) estimate; identify them the way the engine does.
        let is_cut_twin = |v: usize| -> bool {
            red.records.iter().any(|r| match r {
                Removal::Identical { node, rep } => {
                    *node as usize == v
                        && !red.removed[*rep as usize]
                        && bct.cut_index_of(*rep).is_some()
                }
                _ => false,
            })
        };
        for v in 0..n {
            if !red.removed[v] {
                assert_eq!(
                    est.raw()[v], exact[v],
                    "survivor {v} (cut or sampled) inexact at 100% sampling"
                );
            } else if is_cut_twin(v) {
                assert_eq!(est.raw()[v], exact[v], "cut twin {v} must copy its rep");
            } else {
                let d = bfs_distances(g, v as NodeId);
                let home = homing.vertex_home[v];
                let same_home_mass: u64 = removed
                    .iter()
                    .filter(|&&y| {
                        homing.vertex_home[y as usize] == home && !is_cut_twin(y as usize)
                    })
                    .map(|&y| d[y as usize] as u64)
                    .sum();
                assert_eq!(
                    est.raw()[v] + same_home_mass,
                    exact[v],
                    "removed vertex {v} off by more than same-home removed mass"
                );
                assert!(est.raw()[v] <= exact[v]);
            }
        }
    }

    #[test]
    fn exactness_on_structured_graphs() {
        for g in [
            path_graph(12),
            cycle_graph(9),
            star_graph(11),
            lollipop(5, 4),
            caterpillar(7, 2),
        ] {
            assert_full_sampling_semantics(&g, &ReductionConfig::all(), 3);
            assert_full_sampling_semantics(&g, &ReductionConfig::none(), 3);
        }
    }

    #[test]
    fn exactness_on_random_graphs() {
        for seed in 0..8 {
            let g = gnm_random_connected(50, 65 + (seed as usize * 7) % 40, seed);
            assert_full_sampling_semantics(&g, &ReductionConfig::all(), seed);
        }
    }

    #[test]
    fn exactness_without_reductions_pure_bcc() {
        // Isolates the BCT machinery: no removals, all vertices survive.
        for seed in 0..6 {
            let g = gnm_random_connected(40, 46, 50 + seed);
            let exact = exact_farness(&g).unwrap();
            let est =
                cumulative_estimate(&g, &ReductionConfig::none(), SampleSize::Fraction(1.0), 1)
                    .unwrap();
            assert_eq!(est.raw(), exact.as_slice(), "seed {seed}");
        }
    }

    #[test]
    fn exactness_on_class_graphs() {
        let params = ClassParams::new(300, 17);
        for g in [
            web_like(params),
            social_like(params),
            community_like(params),
            road_like(params),
        ] {
            assert_full_sampling_semantics(&g, &ReductionConfig::all(), 5);
        }
    }

    #[test]
    fn partial_sampling_bounds() {
        let g = community_like(ClassParams::new(400, 3));
        let exact = exact_farness(&g).unwrap();
        let est =
            cumulative_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(0.3), 11)
                .unwrap();
        for v in 0..g.num_nodes() {
            assert!(
                est.raw()[v] <= exact[v],
                "estimate exceeds exact at {v}: {} > {}",
                est.raw()[v],
                exact[v]
            );
            if est.is_sampled(v as u32) && !reduce(&g, &ReductionConfig::all()).removed[v] {
                assert_eq!(est.raw()[v], exact[v], "sampled vertex {v} not exact");
            }
        }
    }

    #[test]
    fn cut_vertices_always_sampled_and_exact() {
        let g = lollipop(6, 5);
        let exact = exact_farness(&g).unwrap();
        // Tiny sampling rate: only cut vertices are forced in.
        let est = cumulative_estimate(
            &g,
            &ReductionConfig::none(),
            SampleSize::Count(1),
            2,
        )
        .unwrap();
        let bct = BlockCutTree::build(&g);
        for &c in bct.cut_vertices() {
            assert!(est.is_sampled(c), "cut {c} not sampled");
            assert_eq!(est.raw()[c as usize], exact[c as usize], "cut {c} inexact");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = social_like(ClassParams::new(300, 9));
        let a = cumulative_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(0.25), 4)
            .unwrap();
        let b = cumulative_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(0.25), 4)
            .unwrap();
        assert_eq!(a.raw(), b.raw());
        assert_eq!(a.sampled_mask(), b.sampled_mask());
    }

    #[test]
    fn single_vertex_graph() {
        let g = GraphBuilder::new(1).build();
        let est =
            cumulative_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(1.0), 0)
                .unwrap();
        assert_eq!(est.raw(), &[0]);
    }

    #[test]
    fn disconnected_rejected() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let r = cumulative_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(1.0), 0);
        assert!(matches!(r, Err(CentralityError::Disconnected { .. })));
    }

    #[test]
    fn kernel_choice_is_distance_invariant() {
        // Every kernel computes identical distances, so the whole pipeline's
        // output must be bit-identical across kernel configs.
        let g = web_like(ClassParams::new(300, 8));
        let run = |kernel: Kernel| {
            let ctx = ExecutionContext::new().with_kernel(KernelConfig::new(kernel));
            cumulative_estimate_in(&g, &ReductionConfig::all(), SampleSize::Fraction(0.5), 7, &ctx)
                .unwrap()
        };
        let base = run(Kernel::TopDown);
        for kernel in [Kernel::Auto, Kernel::Hybrid, Kernel::MsBfs] {
            let est = run(kernel);
            assert_eq!(est.raw(), base.raw(), "kernel {kernel:?}");
            assert_eq!(est.sampled_mask(), base.sampled_mask());
            assert_eq!(est.coverage(), base.coverage());
        }
    }

    #[test]
    fn inter_block_mass_is_exact_even_at_tiny_rates() {
        // A path of blocks: farness of any vertex is dominated by
        // inter-block mass, which must be exact regardless of sampling.
        let g = path_graph(40);
        let exact = exact_farness(&g).unwrap();
        let est =
            cumulative_estimate(&g, &ReductionConfig::none(), SampleSize::Count(1), 0).unwrap();
        // In a path every interior vertex is a cut vertex → sampled → exact;
        // ends are in bridge blocks whose only non-cut vertex they are.
        for v in 0..40 {
            assert!(est.raw()[v] <= exact[v]);
        }
        let exact_hits = (0..40).filter(|&v| est.raw()[v] == exact[v]).count();
        assert!(exact_hits >= 38, "only {exact_hits}/40 exact");
    }
}
