//! Assigning removal records to blocks (paper Algorithm 5, Step 1).
//!
//! Each removal record must be replayed inside exactly one block so that
//! (a) block-local BFS runs can reconstruct the removed vertices' distances
//! and (b) the removed vertices are counted in exactly one block's weight.
//!
//! A record's anchors (the surviving vertices its reconstruction reads)
//! determine the candidate blocks; processing records in reverse removal
//! order resolves anchors that were themselves removed by a *later* pass to
//! the block that record was homed to. The paper's Facts III.2 and III.6
//! make identical and redundant records block-consistent in the common
//! case; Fact III.5 notes parallel chains may straddle two blocks of the
//! reduced graph. Such records are reported in
//! [`Homing::cross_records`] and the engine *restores* them into the
//! reduced graph (restoration merges the straddled blocks, so the loop
//! converges), keeping the whole pipeline lossless — where the paper simply
//! "leaves those chains" (Algorithm 5, Step 1).

use brics_bicc::BlockCutTree;
use brics_graph::NodeId;
use brics_reduce::ReductionResult;

/// Result of homing every record.
#[derive(Clone, Debug)]
pub(crate) struct Homing {
    /// `record_home[i]` — block id record `i` is replayed in.
    #[allow(dead_code)] // diagnostic surface; block_records is the hot path
    pub record_home: Vec<u32>,
    /// Record indices per block, ascending (replay them in reverse).
    pub block_records: Vec<Vec<usize>>,
    /// Home block per removed vertex (`u32::MAX` for survivors).
    pub vertex_home: Vec<u32>,
    /// Indices of records whose anchors straddled blocks (paper Fact III.5).
    /// The engine *restores* these into the reduced graph and re-homes, so
    /// after its fixpoint this is always empty; exposed for that loop.
    pub cross_records: Vec<usize>,
}

/// Candidate blocks of a surviving anchor.
fn candidate_blocks(bct: &BlockCutTree, v: NodeId) -> Vec<u32> {
    bct.blocks_of(v)
}

/// Homes every record of `red` against the Block-Cut Tree of its reduced
/// graph.
pub(crate) fn home_records(red: &ReductionResult, bct: &BlockCutTree) -> Homing {
    let n = red.removed.len();
    let num_records = red.records.len();
    let mut record_home = vec![u32::MAX; num_records];
    let mut vertex_home = vec![u32::MAX; n];
    let mut cross = Vec::new();

    for (i, rec) in red.records.iter().enumerate().rev() {
        let anchors = rec.anchors();
        // Candidate set per anchor; `None` encodes "no constraint" never
        // happens (every record has ≥1 anchor).
        let mut inter: Option<Vec<u32>> = None;
        let mut first_choice: Option<u32> = None;
        for &a in &anchors {
            let cand: Vec<u32> = if red.removed[a as usize] {
                // Removed anchor ⇒ removed by a *later* record (an anchor is
                // alive at its record's removal time), already homed.
                debug_assert_ne!(vertex_home[a as usize], u32::MAX, "anchor {a} unhomed");
                vec![vertex_home[a as usize]]
            } else {
                candidate_blocks(bct, a)
            };
            if first_choice.is_none() {
                first_choice = cand.first().copied();
            }
            inter = Some(match inter {
                None => cand,
                Some(prev) => prev.into_iter().filter(|b| cand.contains(b)).collect(),
            });
        }
        let inter = inter.unwrap_or_default();
        let home = match inter.iter().min() {
            Some(&b) => b,
            None => {
                cross.push(i);
                first_choice.expect("record with no anchors")
            }
        };
        record_home[i] = home;
        for x in rec.removed_nodes() {
            vertex_home[x as usize] = home;
        }
    }

    let mut block_records = vec![Vec::new(); bct.num_blocks()];
    for (i, &h) in record_home.iter().enumerate() {
        block_records[h as usize].push(i);
    }
    cross.reverse(); // ascending record order
    Homing { record_home, block_records, vertex_home, cross_records: cross }
}

/// Validates a homing against its inputs (used by tests): every removed
/// vertex homed, survivors unhomed, record lists ascending and complete.
#[cfg(test)]
pub(crate) fn validate_homing(red: &ReductionResult, bct: &BlockCutTree, h: &Homing) {
    for (v, &removed) in red.removed.iter().enumerate() {
        if removed {
            assert_ne!(h.vertex_home[v], u32::MAX, "removed vertex {v} unhomed");
            assert!((h.vertex_home[v] as usize) < bct.num_blocks());
        } else {
            assert_eq!(h.vertex_home[v], u32::MAX, "survivor {v} homed");
        }
    }
    let total: usize = h.block_records.iter().map(Vec::len).sum();
    assert_eq!(total, red.records.len());
    for list in &h.block_records {
        assert!(list.windows(2).all(|w| w[0] < w[1]));
    }
    for (rec, &home) in red.records.iter().zip(&h.record_home) {
        let _ = (rec, home);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_bicc::biconnected_components;
    use brics_graph::generators::{caterpillar, gnm_random_connected, lollipop, star_graph};
    use brics_graph::CsrGraph;
    use brics_reduce::{reduce, ReductionConfig};

    fn bct_of(red: &ReductionResult) -> BlockCutTree {
        let mut bi = biconnected_components(&red.graph);
        bi.blocks
            .retain(|b| !b.edges.is_empty() || !red.removed[b.vertices[0] as usize]);
        BlockCutTree::from_biconnectivity(red.graph.num_nodes(), bi)
    }

    fn check(g: &CsrGraph) -> Homing {
        let red = reduce(g, &ReductionConfig::all());
        let bct = bct_of(&red);
        let h = home_records(&red, &bct);
        validate_homing(&red, &bct, &h);
        h
    }

    #[test]
    fn star_homes_everything_to_single_block() {
        let h = check(&star_graph(10));
        assert!(h.block_records.iter().filter(|l| !l.is_empty()).count() <= 1);
        assert_eq!(h.cross_records.len(), 0);
    }

    #[test]
    fn lollipop_homing() {
        // K5 + tail: tail is a pendant chain homed to a block containing
        // its anchor.
        let h = check(&lollipop(5, 4));
        assert_eq!(h.cross_records.len(), 0);
    }

    #[test]
    fn caterpillar_homing() {
        let h = check(&caterpillar(8, 2));
        assert_eq!(h.cross_records.len(), 0);
    }

    #[test]
    fn random_graphs_home_cleanly() {
        for seed in 0..10 {
            let g = gnm_random_connected(60, 90, seed);
            let h = check(&g);
            // Cross-block chains are possible but rare in these graphs.
            assert!(h.cross_records.len() <= 2, "seed {seed}");
        }
    }

    #[test]
    fn chained_identical_to_pendant_dependency() {
        // Leaves 1..=4 on hub 0, plus an anchor edge 0-5-6 triangle to keep
        // a block: identical pass keeps leaf 1, chain pass removes it;
        // identical records' anchor (leaf 1) is removed later and must
        // resolve through its own home.
        let g = brics_graph::GraphBuilder::from_edges(
            7,
            &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (5, 6), (6, 0)],
        );
        let red = reduce(&g, &ReductionConfig::all());
        let bct = bct_of(&red);
        let h = home_records(&red, &bct);
        validate_homing(&red, &bct, &h);
        // All removed leaves share one home (the block of hub 0).
        let homes: Vec<u32> = (1..=4).map(|v| h.vertex_home[v]).collect();
        assert!(homes.iter().all(|&b| b == homes[0]));
    }
}
