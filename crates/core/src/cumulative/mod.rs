//! The Cumulative method: the full BRICS pipeline (paper Algorithms 4–6).
//!
//! 1. Reduce the graph (I + C + R as configured) — `brics-reduce`.
//! 2. Decompose the reduced graph into biconnected blocks and build the
//!    Block-Cut Tree — `brics-bicc`.
//! 3. *Home* every removal record to one block (paper Algorithm 5 Step 1),
//!    so removed vertices participate in exactly one block's accounting —
//!    `homing`.
//! 4. Sample within each block with every cut vertex forcibly included,
//!    run block-local BFS (Step 2) — `engine`.
//! 5. Sweep the BCT bottom-up and top-down propagating `(weight, dCarry)`
//!    pairs so each block learns the exact total distance mass arriving
//!    through each of its cut vertices (Step 3, Algorithm 6) —
//!    `aggregate`.
//! 6. Assemble farness values (Step 4).
//!
//! ## Accounting model
//!
//! Every original vertex is *owned* by exactly one entity: a non-cut
//! survivor by its block, a removed vertex by its homed block, and a cut
//! vertex by itself (it is its own BCT node). For a vertex `v` evaluated in
//! block `B`:
//!
//! ```text
//! farness(v) = Σ_{x ∈ own(B)} d(v, x)                       (intra part)
//!            + Σ_{c ∈ cuts(B)} [ D(c→B) + W(c→B) · d_B(v, c) ]  (inter part)
//! ```
//!
//! where `W(c→B)` / `D(c→B)` count the vertices, and the sum of their
//! distances to `c`, in the whole BCT subtree hanging off `c` away from `B`
//! (including `c` itself at distance 0). Because every cut vertex is a BFS
//! source, each leg of every inter-block path is exact — the inter part is
//! **exact for every vertex**; only the intra part of non-sampled vertices
//! is a sampled partial sum. This is the mechanism behind the paper's
//! quality advantage over random sampling (§IV-C2, Fig. 5).

mod aggregate;
mod engine;
mod homing;

pub use engine::{cumulative_estimate, cumulative_estimate_in};
pub(crate) use engine::{cumulative_prepare, cumulative_query, CumulativePrep};
