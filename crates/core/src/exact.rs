//! Exact farness: one BFS per vertex, parallel over sources.
//!
//! Ground truth for every quality measurement in the paper's evaluation
//! (the `farness_actual(v)` of §IV-C1). `O(n·(n+m))` — use on graphs small
//! enough that this is affordable; the estimators exist for everything else.

use crate::budget::exact_run_bytes;
use crate::engine::ExecutionContext;
use crate::CentralityError;
use brics_graph::telemetry::{admit_memory_rec, record_outcome, record_panic, timed, Recorder};
use brics_graph::traversal::{par_bfs_sums_ctl_rec, KernelConfig};
use brics_graph::{CsrGraph, NodeId, RunControl};

/// Computes the exact farness of every vertex.
///
/// Returns [`CentralityError::Disconnected`] if any BFS fails to reach the
/// whole graph, and [`CentralityError::EmptyGraph`] for an empty input.
pub fn exact_farness(g: &CsrGraph) -> Result<Vec<u64>, CentralityError> {
    exact_farness_in(g, &ExecutionContext::new())
}

/// [`exact_farness`] under an [`ExecutionContext`] (limits, kernel choice,
/// telemetry).
///
/// Exact farness is all-or-nothing — a subset of sources is an *estimate*,
/// not ground truth — so deadline/cancellation surfaces as
/// [`CentralityError::Interrupted`] rather than a partial result. Use the
/// sampling estimators when partial answers are acceptable. The result is
/// bit-identical across kernels and recorders; those only affect wall time
/// and observability.
pub fn exact_farness_in<R: Recorder>(
    g: &CsrGraph,
    ctx: &ExecutionContext<'_, R>,
) -> Result<Vec<u64>, CentralityError> {
    let admit = exact_run_bytes(g.num_nodes(), ctx.thread_count());
    timed(ctx.recorder(), "estimate", || {
        exact_query(g, admit, ctx.control(), ctx.kernel(), ctx.recorder())
    })
}

/// The query stage shared by [`exact_farness_in`] and
/// [`crate::engine::PreparedGraph::exact`] (which supplies its precomputed
/// admission figure).
pub(crate) fn exact_query<R: Recorder>(
    g: &CsrGraph,
    admit_bytes: u64,
    ctl: &RunControl,
    kcfg: &KernelConfig,
    rec: &R,
) -> Result<Vec<u64>, CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    admit_memory_rec(ctl, admit_bytes, rec)?;
    let sources: Vec<NodeId> = (0..n as NodeId).collect();
    let (rows, outcome) = timed(rec, "exact.bfs", || par_bfs_sums_ctl_rec(g, &sources, ctl, kcfg, rec))
        .map_err(|p| {
            record_panic(rec, &p.detail);
            p
        })?;
    record_outcome(rec, outcome, "exact farness sweep");
    if !outcome.is_complete() {
        return Err(CentralityError::Interrupted { outcome });
    }
    let rows: Vec<(usize, u64)> = rows.into_iter().map(Option::unwrap).collect();
    if rows.iter().any(|&(reached, _)| reached != n) {
        let comps = brics_graph::connectivity::connected_components(g).count();
        return Err(CentralityError::Disconnected { components: comps });
    }
    Ok(rows.into_iter().map(|(_, sum)| sum).collect())
}

/// Exact closeness: `1 / farness` (`0.0` where farness is 0, i.e. `n = 1`).
pub fn exact_closeness(g: &CsrGraph) -> Result<Vec<f64>, CentralityError> {
    Ok(exact_farness(g)?
        .into_iter()
        .map(|f| if f == 0 { 0.0 } else { 1.0 / f as f64 })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::generators::{complete_graph, cycle_graph, path_graph, star_graph};
    use brics_graph::GraphBuilder;

    #[test]
    fn path_farness() {
        // Path 0-1-2-3: farness(0) = 1+2+3 = 6, farness(1) = 1+1+2 = 4.
        let f = exact_farness(&path_graph(4)).unwrap();
        assert_eq!(f, vec![6, 4, 4, 6]);
    }

    #[test]
    fn cycle_farness_uniform() {
        // C6: distances 1,2,3,2,1 from anywhere → farness 9 for all.
        let f = exact_farness(&cycle_graph(6)).unwrap();
        assert_eq!(f, vec![9; 6]);
    }

    #[test]
    fn star_farness() {
        // K_{1,4}: centre 4, leaves 1 + 3·2 = 7.
        let f = exact_farness(&star_graph(5)).unwrap();
        assert_eq!(f, vec![4, 7, 7, 7, 7]);
    }

    #[test]
    fn complete_graph_farness() {
        let f = exact_farness(&complete_graph(7)).unwrap();
        assert_eq!(f, vec![6; 7]);
    }

    #[test]
    fn disconnected_rejected() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(
            exact_farness(&g),
            Err(CentralityError::Disconnected { components: 2 })
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(exact_farness(&CsrGraph::empty()), Err(CentralityError::EmptyGraph));
    }

    #[test]
    fn single_vertex() {
        let g = GraphBuilder::new(1).build();
        assert_eq!(exact_farness(&g).unwrap(), vec![0]);
        assert_eq!(exact_closeness(&g).unwrap(), vec![0.0]);
    }

    #[test]
    fn ctl_deadline_is_an_error_not_a_partial_result() {
        let g = cycle_graph(20);
        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_timeout(std::time::Duration::ZERO));
        let err = exact_farness_in(&g, &ctx).unwrap_err();
        assert!(matches!(
            err,
            CentralityError::Interrupted { outcome: brics_graph::RunOutcome::Deadline }
        ));
    }

    #[test]
    fn ctl_budget_and_panic_paths() {
        let g = cycle_graph(50);
        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_memory_budget_bytes(1));
        assert!(matches!(
            exact_farness_in(&g, &ctx).unwrap_err(),
            CentralityError::BudgetExceeded { .. }
        ));
        let ctx = ExecutionContext::new().with_control(RunControl::new().with_injected_panic(7));
        assert!(matches!(
            exact_farness_in(&g, &ctx).unwrap_err(),
            CentralityError::Internal { .. }
        ));
        // An unbounded context matches the plain entry point.
        assert_eq!(
            exact_farness_in(&g, &ExecutionContext::new()).unwrap(),
            exact_farness(&g).unwrap()
        );
    }

    #[test]
    fn closeness_is_reciprocal() {
        let g = path_graph(4);
        let f = exact_farness(&g).unwrap();
        let c = exact_closeness(&g).unwrap();
        for (fi, ci) in f.iter().zip(&c) {
            assert!((ci - 1.0 / *fi as f64).abs() < 1e-12);
        }
    }
}
