//! Exact farness: one BFS per vertex, parallel over sources.
//!
//! Ground truth for every quality measurement in the paper's evaluation
//! (the `farness_actual(v)` of §IV-C1). `O(n·(n+m))` — use on graphs small
//! enough that this is affordable; the estimators exist for everything else.

use crate::CentralityError;
use brics_graph::traversal::Bfs;
use brics_graph::{CsrGraph, NodeId};
use rayon::prelude::*;

/// Computes the exact farness of every vertex.
///
/// Returns [`CentralityError::Disconnected`] if any BFS fails to reach the
/// whole graph, and [`CentralityError::EmptyGraph`] for an empty input.
pub fn exact_farness(g: &CsrGraph) -> Result<Vec<u64>, CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    let rows: Vec<(usize, u64)> = (0..n as NodeId)
        .into_par_iter()
        .map_init(|| Bfs::new(n), |bfs, s| bfs.run_with(g, s, |_, _| {}))
        .collect();
    if let Some((_, _)) = rows.iter().find(|&&(reached, _)| reached != n) {
        let comps = brics_graph::connectivity::connected_components(g).count();
        return Err(CentralityError::Disconnected { components: comps });
    }
    Ok(rows.into_iter().map(|(_, sum)| sum).collect())
}

/// Exact closeness: `1 / farness` (`0.0` where farness is 0, i.e. `n = 1`).
pub fn exact_closeness(g: &CsrGraph) -> Result<Vec<f64>, CentralityError> {
    Ok(exact_farness(g)?
        .into_iter()
        .map(|f| if f == 0 { 0.0 } else { 1.0 / f as f64 })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::generators::{complete_graph, cycle_graph, path_graph, star_graph};
    use brics_graph::GraphBuilder;

    #[test]
    fn path_farness() {
        // Path 0-1-2-3: farness(0) = 1+2+3 = 6, farness(1) = 1+1+2 = 4.
        let f = exact_farness(&path_graph(4)).unwrap();
        assert_eq!(f, vec![6, 4, 4, 6]);
    }

    #[test]
    fn cycle_farness_uniform() {
        // C6: distances 1,2,3,2,1 from anywhere → farness 9 for all.
        let f = exact_farness(&cycle_graph(6)).unwrap();
        assert_eq!(f, vec![9; 6]);
    }

    #[test]
    fn star_farness() {
        // K_{1,4}: centre 4, leaves 1 + 3·2 = 7.
        let f = exact_farness(&star_graph(5)).unwrap();
        assert_eq!(f, vec![4, 7, 7, 7, 7]);
    }

    #[test]
    fn complete_graph_farness() {
        let f = exact_farness(&complete_graph(7)).unwrap();
        assert_eq!(f, vec![6; 7]);
    }

    #[test]
    fn disconnected_rejected() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(
            exact_farness(&g),
            Err(CentralityError::Disconnected { components: 2 })
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(exact_farness(&CsrGraph::empty()), Err(CentralityError::EmptyGraph));
    }

    #[test]
    fn single_vertex() {
        let g = GraphBuilder::new(1).build();
        assert_eq!(exact_farness(&g).unwrap(), vec![0]);
        assert_eq!(exact_closeness(&g).unwrap(), vec![0.0]);
    }

    #[test]
    fn closeness_is_reciprocal() {
        let g = path_graph(4);
        let f = exact_farness(&g).unwrap();
        let c = exact_closeness(&g).unwrap();
        for (fi, ci) in f.iter().zip(&c) {
            assert!((ci - 1.0 / *fi as f64).abs() < 1e-12);
        }
    }
}
