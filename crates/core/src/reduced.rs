//! Reduction-based estimation *without* the biconnected decomposition —
//! the paper's C+R and I+C+R ablation configurations (§IV-C2).
//!
//! The graph is reduced (identical / chain / redundant removals as
//! configured), `k` sources are sampled from the *survivors*, and each BFS
//! runs on the reduced graph. After each BFS the removal log is replayed to
//! reconstruct the exact distance of every removed vertex from that source
//! (paper Algorithms 2–3), so removed vertices still receive distance mass
//! from every source and every source still gets its exact farness over the
//! *full* vertex set. Quality is therefore identical to random sampling
//! with the same sources (the paper's observation that only the BiCC
//! technique affects quality); time drops because BFS touches fewer edges
//! and the sample budget `k%` is taken of the smaller surviving population.

use crate::budget::accumulate_run_bytes;
use crate::config::SampleSize;
use crate::sampling::draw_sources;
use crate::{CentralityError, FarnessEstimate};
use brics_graph::telemetry::{
    admit_memory_rec, record_outcome, record_panic, timed, Counter, NullRecorder, Recorder,
};
use brics_graph::traversal::{atomic_view, Bfs, DialBfs, WorkerGuard};
use brics_graph::{CsrGraph, NodeId, RunControl, INFINITE_DIST};
use brics_reduce::{reconstruct_distances, reduce, reduce_ctl_rec, ReductionConfig, Removal};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Estimates farness with structural reductions and plain (non-block)
/// sampling.
pub fn reduced_estimate(
    g: &CsrGraph,
    reductions: &ReductionConfig,
    sample: SampleSize,
    seed: u64,
) -> Result<FarnessEstimate, CentralityError> {
    reduced_estimate_ctl(g, reductions, sample, seed, &RunControl::new())
}

/// [`reduced_estimate`] under a [`RunControl`]: same per-source interruption
/// contract as [`crate::sampling::random_sampling_ctl`]. A source's BFS *and*
/// its removed-vertex reconstruction are one unit of work — either both land
/// in the accumulator or neither does.
pub fn reduced_estimate_ctl(
    g: &CsrGraph,
    reductions: &ReductionConfig,
    sample: SampleSize,
    seed: u64,
    ctl: &RunControl,
) -> Result<FarnessEstimate, CentralityError> {
    reduced_estimate_ctl_rec(g, reductions, sample, seed, ctl, &NullRecorder)
}

/// [`reduced_estimate_ctl`] with a telemetry [`Recorder`]: per-rule
/// reduction spans and counters (via
/// [`brics_reduce::reduce_ctl_rec`]), the sweep span, per-source BFS
/// counters and RunControl events. Observe-only — the estimate is
/// bit-identical with [`NullRecorder`].
pub fn reduced_estimate_ctl_rec<R: Recorder>(
    g: &CsrGraph,
    reductions: &ReductionConfig,
    sample: SampleSize,
    seed: u64,
    ctl: &RunControl,
    rec: &R,
) -> Result<FarnessEstimate, CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    admit_memory_rec(ctl, accumulate_run_bytes(n), rec)?;
    let start = Instant::now();
    // The reduction runs under the control too: on large graphs it can
    // dominate wall time, and a deadline hit mid-pipeline degrades to the
    // zero-coverage estimate (no source completed; trivially sound bounds).
    let r = match timed(rec, "reduce", || reduce_ctl_rec(g, reductions, ctl, rec)) {
        Ok(r) => r,
        Err(outcome) => {
            record_outcome(rec, outcome, "reduction pipeline interrupted");
            return Ok(FarnessEstimate::new(
                vec![0; n],
                vec![0.0; n],
                vec![false; n],
                vec![0; n],
                0,
                start.elapsed(),
                outcome,
            ))
        }
    };
    let survivors = r.surviving();
    let k = sample.resolve(survivors.len());
    if k == 0 {
        return Err(CentralityError::NoSamples);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let source_idx = draw_sources(survivors.len(), k, &mut rng);
    let sources: Vec<NodeId> = source_idx.iter().map(|&i| survivors[i as usize]).collect();

    let mut acc = vec![0u64; n];
    let atomic_acc = atomic_view(&mut acc);
    let num_surviving = survivors.len();
    let records = &r.records;
    let reduced_graph = &r.graph;
    let weights = r.weights.as_deref();
    let guard = WorkerGuard::new(ctl);

    // One (possibly weighted) BFS per source; removed-vertex distances are
    // reconstructed from the same thread-local distance array the traversal
    // wrote, then reset so the array's sparse-reset invariant holds for the
    // next source.
    let per_source: Vec<Option<(usize, u64)>> = timed(rec, "reduced.bfs", || {
        sources
            .par_iter()
            .map_init(
                || DialBfs::new(n),
                |bfs, &s| {
                    guard.run_source(s, || {
                        let (reached, mut sum) = bfs.run_with(reduced_graph, weights, s, |v, d| {
                            if d > 0 {
                                atomic_acc[v as usize].fetch_add(d as u64, Ordering::Relaxed);
                            }
                        });
                        let dist = bfs.distances_mut();
                        reconstruct_distances(records, dist);
                        for rem in records {
                            for x in rem.removed_nodes() {
                                let d = dist[x as usize];
                                debug_assert_ne!(d, INFINITE_DIST, "unreachable removed vertex {x}");
                                atomic_acc[x as usize].fetch_add(d as u64, Ordering::Relaxed);
                                sum += d as u64;
                                dist[x as usize] = INFINITE_DIST;
                            }
                        }
                        (reached, sum)
                    })
                },
            )
            .collect()
    });
    let outcome = guard.finish().map_err(|p| {
        record_panic(rec, &p.detail);
        p
    })?;
    record_outcome(rec, outcome, "reduced-estimate BFS sweep");
    if rec.enabled() {
        let done = per_source.iter().flatten().count() as u64;
        rec.add(Counter::BfsSources, done);
        rec.add(
            Counter::VerticesVisited,
            per_source.iter().flatten().map(|&(r, _)| r as u64).sum(),
        );
        rec.add(Counter::EdgesScanned, done * reduced_graph.num_arcs() as u64);
        rec.add(Counter::BfsSourcesSkipped, per_source.len() as u64 - done);
    }

    if per_source.iter().flatten().any(|&(reached, _)| reached != num_surviving) {
        let comps = brics_graph::connectivity::connected_components(g).count();
        return Err(CentralityError::Disconnected { components: comps });
    }

    let mut sampled = vec![false; n];
    for (&s, per) in sources.iter().zip(&per_source) {
        if let Some((_, sum)) = *per {
            sampled[s as usize] = true;
            acc[s as usize] = sum;
        }
    }
    let k_done = per_source.iter().flatten().count();
    // Scaled view: expand partial sums by (n-1)/k_done, then de-bias with the
    // total structural-offset mass (sources are survivors only; removed
    // vertices sit `offset` hops beyond their anchors — DESIGN.md §5).
    let factor = if k_done > 0 { (n as f64 - 1.0) / k_done as f64 } else { 1.0 };
    let offset_total: u64 = brics_reduce::structural_offsets(records, n)
        .iter()
        .map(|&o| o as u64)
        .sum();
    let scaled: Vec<f64> = acc
        .iter()
        .zip(&sampled)
        .map(|(&v, &is_src)| {
            if is_src {
                v as f64
            } else if k_done > 0 {
                v as f64 * factor + offset_total as f64
            } else {
                v as f64
            }
        })
        .collect();
    let coverage: Vec<u32> = sampled
        .iter()
        .map(|&s| if s { (n - 1) as u32 } else { k_done as u32 })
        .collect();
    Ok(FarnessEstimate::new(
        acc,
        scaled,
        sampled,
        coverage,
        k_done,
        start.elapsed(),
        outcome,
    ))
}

/// Exact farness via the reduction pipeline: sample **every** survivor.
/// Exists mainly as a stronger test oracle (it exercises the reconstruction
/// on all sources) and as a faster exact algorithm on reducible graphs.
pub fn reduced_exact_farness(
    g: &CsrGraph,
    reductions: &ReductionConfig,
) -> Result<Vec<u64>, CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    let est = reduced_estimate(g, reductions, SampleSize::Fraction(1.0), 0)?;
    // Every survivor was a source, so survivors are exact. A removed vertex
    // x holds Σ_{s surviving} d(s, x), which misses its distances to the
    // *other removed* vertices. Complete those with one true BFS per removed
    // vertex on the original graph — still cheaper than full exact when the
    // removed set is small, and a strong oracle for the reconstruction path.
    let r = reduce(g, reductions);
    let removed: Vec<NodeId> = (0..n as NodeId).filter(|&v| r.removed[v as usize]).collect();
    let mut values = est.raw().to_vec();
    let sums: Vec<(NodeId, u64)> = removed
        .par_iter()
        .map_init(
            || Bfs::new(n),
            |bfs, &x| {
                let (_, sum) = bfs.run_with(g, x, |_, _| {});
                (x, sum)
            },
        )
        .collect();
    for (x, sum) in sums {
        values[x as usize] = sum;
    }
    Ok(values)
}

/// Returns the reduction result the estimator would use — exposed so
/// harnesses can report Table-I statistics without re-running detection.
pub fn reduction_preview(g: &CsrGraph, reductions: &ReductionConfig) -> brics_reduce::ReductionResult {
    reduce(g, reductions)
}

/// Sum of distances from `source` to every vertex of the original graph,
/// computed on the (possibly weighted) reduced graph + reconstruction.
/// Test helper and building block for single-vertex farness queries.
pub fn reduced_single_source_sum(
    reduced_graph: &CsrGraph,
    weights: Option<&[u32]>,
    records: &[Removal],
    source: NodeId,
) -> u64 {
    let mut bfs = DialBfs::new(reduced_graph.num_nodes());
    let (_, mut sum) = bfs.run_with(reduced_graph, weights, source, |_, _| {});
    let dist = bfs.distances_mut();
    reconstruct_distances(records, dist);
    for rec in records {
        for x in rec.removed_nodes() {
            sum += dist[x as usize] as u64;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_farness;
    use brics_graph::generators::{
        caterpillar, gnm_random_connected, lollipop, social_like, star_graph, ClassParams,
    };

    #[test]
    fn full_sampling_matches_exact_for_sources() {
        for seed in 0..6 {
            let g = gnm_random_connected(50, 70, seed);
            let exact = exact_farness(&g).unwrap();
            let est =
                reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(1.0), seed)
                    .unwrap();
            for v in 0..50u32 {
                if est.is_sampled(v) {
                    assert_eq!(est.raw()[v as usize], exact[v as usize], "seed {seed} v {v}");
                }
            }
        }
    }

    #[test]
    fn reduced_exact_matches_exact_everywhere() {
        for seed in 0..6 {
            let g = gnm_random_connected(40, 55, 100 + seed);
            let exact = exact_farness(&g).unwrap();
            let red = reduced_exact_farness(&g, &ReductionConfig::all()).unwrap();
            assert_eq!(red, exact, "seed {seed}");
        }
    }

    #[test]
    fn structured_graphs_exact() {
        for g in [star_graph(12), caterpillar(6, 2), lollipop(5, 4)] {
            let exact = exact_farness(&g).unwrap();
            let red = reduced_exact_farness(&g, &ReductionConfig::all()).unwrap();
            assert_eq!(red, exact);
        }
    }

    #[test]
    fn class_graph_exactness() {
        let g = social_like(ClassParams::new(400, 5));
        let exact = exact_farness(&g).unwrap();
        let red = reduced_exact_farness(&g, &ReductionConfig::all()).unwrap();
        assert_eq!(red, exact);
    }

    #[test]
    fn partial_sampling_is_lower_bound() {
        let g = gnm_random_connected(60, 90, 2);
        let exact = exact_farness(&g).unwrap();
        let est =
            reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(0.4), 3).unwrap();
        for v in 0..60u32 {
            assert!(est.raw()[v as usize] <= exact[v as usize], "v {v}");
        }
    }

    #[test]
    fn deterministic() {
        let g = caterpillar(8, 3);
        let a = reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Count(4), 9).unwrap();
        let b = reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Count(4), 9).unwrap();
        assert_eq!(a.raw(), b.raw());
    }

    #[test]
    fn ctl_deadline_partial_and_panic_paths() {
        let g = gnm_random_connected(50, 70, 4);
        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        let est =
            reduced_estimate_ctl(&g, &ReductionConfig::all(), SampleSize::Count(8), 1, &ctl)
                .unwrap();
        assert!(est.is_partial());
        assert_eq!(est.num_sources(), 0);
        assert!(est.raw().iter().all(|&x| x == 0));

        // Panic inside the reduced BFS+reconstruction unit.
        let full = reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Count(8), 1).unwrap();
        let victim = (0..50u32).find(|&v| full.is_sampled(v)).unwrap();
        let ctl = RunControl::new().with_injected_panic(victim);
        let err = reduced_estimate_ctl(&g, &ReductionConfig::all(), SampleSize::Count(8), 1, &ctl)
            .unwrap_err();
        assert!(matches!(err, CentralityError::Internal { .. }));

        // Budget rejection happens before any BFS.
        let ctl = RunControl::new().with_memory_budget_bytes(1);
        let err = reduced_estimate_ctl(&g, &ReductionConfig::all(), SampleSize::Count(8), 1, &ctl)
            .unwrap_err();
        assert!(matches!(err, CentralityError::BudgetExceeded { .. }));
    }

    #[test]
    fn sources_drawn_from_survivors_only() {
        let g = star_graph(20);
        let est = reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(1.0), 1)
            .unwrap();
        // Star reduces to the hub alone; only it can be sampled.
        assert_eq!(est.num_sources(), 1);
        assert!(est.is_sampled(0));
    }
}
