//! Reduction-based estimation *without* the biconnected decomposition —
//! the paper's C+R and I+C+R ablation configurations (§IV-C2).
//!
//! The graph is reduced (identical / chain / redundant removals as
//! configured), `k` sources are sampled from the *survivors*, and each BFS
//! runs on the reduced graph. After each BFS the removal log is replayed to
//! reconstruct the exact distance of every removed vertex from that source
//! (paper Algorithms 2–3), so removed vertices still receive distance mass
//! from every source and every source still gets its exact farness over the
//! *full* vertex set. Quality is therefore identical to random sampling
//! with the same sources (the paper's observation that only the BiCC
//! technique affects quality); time drops because BFS touches fewer edges
//! and the sample budget `k%` is taken of the smaller surviving population.
//!
//! The reduction itself is the *prepare* stage: the one-shot entry points
//! here build a [`PreparedGraph`] and immediately query it, and repeated
//! queries should hold on to the artifact instead
//! ([`PreparedGraph::reduced`]).

use crate::config::SampleSize;
use crate::engine::{assemble_flat, zero_coverage_estimate, ExecutionContext, PrepareConfig, PreparedGraph};
use crate::sampling::draw_sources;
use crate::{CentralityError, FarnessEstimate};
use brics_graph::telemetry::{
    admit_memory_rec, record_outcome, record_panic, timed, Counter, Metric, Recorder,
};
use brics_graph::traversal::{atomic_view, DialBfs, WorkerGuard};
use brics_graph::{CsrGraph, NodeId, RunControl, INFINITE_DIST};
use brics_reduce::{reconstruct_distances, reduce, ReductionConfig, ReductionResult, Removal};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Estimates farness with structural reductions and plain (non-block)
/// sampling.
pub fn reduced_estimate(
    g: &CsrGraph,
    reductions: &ReductionConfig,
    sample: SampleSize,
    seed: u64,
) -> Result<FarnessEstimate, CentralityError> {
    reduced_estimate_in(g, reductions, sample, seed, &ExecutionContext::new())
}

/// [`reduced_estimate`] under an [`ExecutionContext`] (limits, telemetry).
///
/// Builds a [`PreparedGraph`] (the reduction is the prepare stage) and runs
/// one query against it. A deadline or cancellation hit *during the
/// reduction* degrades to the zero-coverage partial estimate (no source
/// completed; trivially sound bounds); during the sweep, each source's BFS
/// *and* its removed-vertex reconstruction are one unit of work — either
/// both land in the accumulator or neither does.
pub fn reduced_estimate_in<R: Recorder>(
    g: &CsrGraph,
    reductions: &ReductionConfig,
    sample: SampleSize,
    seed: u64,
    ctx: &ExecutionContext<'_, R>,
) -> Result<FarnessEstimate, CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    let start = Instant::now();
    let cfg = PrepareConfig {
        reductions: *reductions,
        use_bcc: false,
        reorder: false,
    };
    let prepared = match PreparedGraph::build_with(g, cfg, ctx) {
        Ok(p) => p,
        // On large graphs the reduction can dominate wall time; a deadline
        // hit mid-pipeline degrades to the zero-coverage estimate.
        Err(CentralityError::Interrupted { outcome }) => {
            return Ok(zero_coverage_estimate(n, start, outcome))
        }
        Err(e) => return Err(e),
    };
    prepared.reduced(sample, seed, ctx)
}

/// The query stage shared by [`reduced_estimate_in`] and
/// [`PreparedGraph::reduced`]: sample `k` sources from `survivors`, sweep
/// the reduced graph, replay the removal log per source, assemble.
///
/// `g` is the (working) graph the reduction was computed from — used only
/// for the disconnectivity diagnostic. `offset_total` is the precomputed
/// structural-offset mass used to de-bias the scaled view.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reduced_query<R: Recorder>(
    g: &CsrGraph,
    red: &ReductionResult,
    survivors: &[NodeId],
    offset_total: u64,
    admit_bytes: u64,
    sample: SampleSize,
    seed: u64,
    ctl: &RunControl,
    rec: &R,
) -> Result<FarnessEstimate, CentralityError> {
    let n = g.num_nodes();
    if n == 0 {
        return Err(CentralityError::EmptyGraph);
    }
    admit_memory_rec(ctl, admit_bytes, rec)?;
    let k = sample.resolve(survivors.len());
    if k == 0 {
        return Err(CentralityError::NoSamples);
    }
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let source_idx = draw_sources(survivors.len(), k, &mut rng);
    let sources: Vec<NodeId> = source_idx.iter().map(|&i| survivors[i as usize]).collect();

    let mut acc = vec![0u64; n];
    let atomic_acc = atomic_view(&mut acc);
    let num_surviving = survivors.len();
    let records = &red.records;
    let reduced_graph = &red.graph;
    let weights = red.weights.as_deref();
    let guard = WorkerGuard::new(ctl);
    if rec.enabled() {
        rec.add(Counter::BfsSourcesPlanned, sources.len() as u64);
    }

    // One (possibly weighted) BFS per source; removed-vertex distances are
    // reconstructed from the same thread-local distance array the traversal
    // wrote, then reset so the array's sparse-reset invariant holds for the
    // next source. The third tuple slot is the arc count the traversal
    // actually scanned (weighted Dial sweeps touch fewer arcs than
    // `num_arcs` suggests, and interrupted sources touch none).
    let per_source: Vec<Option<(usize, u64, u64)>> = timed(rec, "reduced.bfs", || {
        sources
            .par_iter()
            .map_init(
                || DialBfs::new(n),
                |bfs, &s| {
                    let started = if rec.enabled() { Some(Instant::now()) } else { None };
                    let out = guard.run_source(s, || {
                        let (reached, mut sum) = bfs.run_with(reduced_graph, weights, s, |v, d| {
                            if d > 0 {
                                atomic_acc[v as usize].fetch_add(d as u64, Ordering::Relaxed);
                            }
                        });
                        let dist = bfs.distances_mut();
                        reconstruct_distances(records, dist);
                        for rem in records {
                            for x in rem.removed_nodes() {
                                let d = dist[x as usize];
                                debug_assert_ne!(d, INFINITE_DIST, "unreachable removed vertex {x}");
                                atomic_acc[x as usize].fetch_add(d as u64, Ordering::Relaxed);
                                sum += d as u64;
                                dist[x as usize] = INFINITE_DIST;
                            }
                        }
                        (reached, sum, bfs.arcs_scanned())
                    });
                    if let (Some(started), Some(_)) = (started, out.as_ref()) {
                        let end = Instant::now();
                        rec.observe(
                            Metric::SourceBfsNanos,
                            end.duration_since(started).as_nanos() as u64,
                        );
                        if rec.trace_enabled() {
                            rec.trace_span("bfs.source", started, end);
                        }
                    }
                    out
                },
            )
            .collect()
    });
    let outcome = guard.finish().map_err(|p| {
        record_panic(rec, &p.detail);
        p
    })?;
    record_outcome(rec, outcome, "reduced-estimate BFS sweep");
    if rec.enabled() {
        let done = per_source.iter().flatten().count() as u64;
        rec.add(Counter::BfsSources, done);
        rec.add(
            Counter::VerticesVisited,
            per_source.iter().flatten().map(|&(r, _, _)| r as u64).sum(),
        );
        rec.add(
            Counter::EdgesScanned,
            per_source.iter().flatten().map(|&(_, _, scanned)| scanned).sum(),
        );
        rec.add(Counter::BfsSourcesSkipped, per_source.len() as u64 - done);
    }

    if per_source.iter().flatten().any(|&(reached, _, _)| reached != num_surviving) {
        let comps = brics_graph::connectivity::connected_components(g).count();
        return Err(CentralityError::Disconnected { components: comps });
    }

    let per_source: Vec<Option<(usize, u64)>> =
        per_source.into_iter().map(|o| o.map(|(r, s, _)| (r, s))).collect();
    Ok(assemble_flat(n, acc, &sources, &per_source, offset_total, start, outcome))
}

/// Exact farness via the reduction pipeline: sample **every** survivor.
/// Exists mainly as a stronger test oracle (it exercises the reconstruction
/// on all sources) and as a faster exact algorithm on reducible graphs.
///
/// The reduction runs exactly once: the same [`PreparedGraph`] artifact
/// serves both the survivor sweep and the removed-vertex completion pass
/// ([`PreparedGraph::reduced_exact`]).
pub fn reduced_exact_farness(
    g: &CsrGraph,
    reductions: &ReductionConfig,
) -> Result<Vec<u64>, CentralityError> {
    let ctx = ExecutionContext::new();
    let cfg = PrepareConfig {
        reductions: *reductions,
        use_bcc: false,
        reorder: false,
    };
    PreparedGraph::build_with(g, cfg, &ctx)?.reduced_exact(&ctx)
}

/// Returns the reduction result the estimator would use — exposed so
/// harnesses can report Table-I statistics without re-running detection.
pub fn reduction_preview(g: &CsrGraph, reductions: &ReductionConfig) -> brics_reduce::ReductionResult {
    reduce(g, reductions)
}

/// Sum of distances from `source` to every vertex of the original graph,
/// computed on the (possibly weighted) reduced graph + reconstruction.
/// Test helper and building block for single-vertex farness queries.
pub fn reduced_single_source_sum(
    reduced_graph: &CsrGraph,
    weights: Option<&[u32]>,
    records: &[Removal],
    source: NodeId,
) -> u64 {
    let mut bfs = DialBfs::new(reduced_graph.num_nodes());
    let (_, mut sum) = bfs.run_with(reduced_graph, weights, source, |_, _| {});
    let dist = bfs.distances_mut();
    reconstruct_distances(records, dist);
    for rec in records {
        for x in rec.removed_nodes() {
            sum += dist[x as usize] as u64;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_farness;
    use brics_graph::generators::{
        caterpillar, gnm_random_connected, lollipop, social_like, star_graph, ClassParams,
    };

    #[test]
    fn full_sampling_matches_exact_for_sources() {
        for seed in 0..6 {
            let g = gnm_random_connected(50, 70, seed);
            let exact = exact_farness(&g).unwrap();
            let est =
                reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(1.0), seed)
                    .unwrap();
            for v in 0..50u32 {
                if est.is_sampled(v) {
                    assert_eq!(est.raw()[v as usize], exact[v as usize], "seed {seed} v {v}");
                }
            }
        }
    }

    #[test]
    fn reduced_exact_matches_exact_everywhere() {
        for seed in 0..6 {
            let g = gnm_random_connected(40, 55, 100 + seed);
            let exact = exact_farness(&g).unwrap();
            let red = reduced_exact_farness(&g, &ReductionConfig::all()).unwrap();
            assert_eq!(red, exact, "seed {seed}");
        }
    }

    #[test]
    fn structured_graphs_exact() {
        for g in [star_graph(12), caterpillar(6, 2), lollipop(5, 4)] {
            let exact = exact_farness(&g).unwrap();
            let red = reduced_exact_farness(&g, &ReductionConfig::all()).unwrap();
            assert_eq!(red, exact);
        }
    }

    #[test]
    fn class_graph_exactness() {
        let g = social_like(ClassParams::new(400, 5));
        let exact = exact_farness(&g).unwrap();
        let red = reduced_exact_farness(&g, &ReductionConfig::all()).unwrap();
        assert_eq!(red, exact);
    }

    #[test]
    fn partial_sampling_is_lower_bound() {
        let g = gnm_random_connected(60, 90, 2);
        let exact = exact_farness(&g).unwrap();
        let est =
            reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(0.4), 3).unwrap();
        for v in 0..60u32 {
            assert!(est.raw()[v as usize] <= exact[v as usize], "v {v}");
        }
    }

    #[test]
    fn deterministic() {
        let g = caterpillar(8, 3);
        let a = reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Count(4), 9).unwrap();
        let b = reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Count(4), 9).unwrap();
        assert_eq!(a.raw(), b.raw());
    }

    #[test]
    fn ctl_deadline_partial_and_panic_paths() {
        let g = gnm_random_connected(50, 70, 4);
        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_timeout(std::time::Duration::ZERO));
        let est =
            reduced_estimate_in(&g, &ReductionConfig::all(), SampleSize::Count(8), 1, &ctx)
                .unwrap();
        assert!(est.is_partial());
        assert_eq!(est.num_sources(), 0);
        assert!(est.raw().iter().all(|&x| x == 0));

        // Panic inside the reduced BFS+reconstruction unit.
        let full = reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Count(8), 1).unwrap();
        let victim = (0..50u32).find(|&v| full.is_sampled(v)).unwrap();
        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_injected_panic(victim));
        let err = reduced_estimate_in(&g, &ReductionConfig::all(), SampleSize::Count(8), 1, &ctx)
            .unwrap_err();
        assert!(matches!(err, CentralityError::Internal { .. }));

        // Budget rejection happens before any BFS.
        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_memory_budget_bytes(1));
        let err = reduced_estimate_in(&g, &ReductionConfig::all(), SampleSize::Count(8), 1, &ctx)
            .unwrap_err();
        assert!(matches!(err, CentralityError::BudgetExceeded { .. }));
    }

    #[test]
    fn sources_drawn_from_survivors_only() {
        let g = star_graph(20);
        let est = reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(1.0), 1)
            .unwrap();
        // Star reduces to the hub alone; only it can be sampled.
        assert_eq!(est.num_sources(), 1);
        assert!(est.is_sampled(0));
    }
}
