//! **BRICS** — parallel estimation of farness centrality on undirected
//! graphs, reproducing Regunta, Tondomker & Kothapalli, *"BRICS: Efficient
//! Techniques for Estimating the Farness-Centrality in Parallel"* (2019).
//!
//! The farness of a vertex is the sum of its shortest-path distances to all
//! other vertices (its reciprocal is the closeness centrality). Exact
//! computation needs one BFS per vertex; BRICS estimates it from a sampled
//! subset of BFS sources, and beats plain random sampling on both time and
//! estimate quality by exploiting graph structure:
//!
//! * **B** — decompose the graph into **b**iconnected components, sample
//!   *within* blocks (cut vertices always sampled), run block-local BFS and
//!   combine blocks exactly through the Block-Cut Tree;
//! * **R** — strip **r**edundant 3/4-degree vertices;
//! * **I** — strip **i**dentical vertices (equal neighbourhoods);
//! * **C** — strip redundant degree-2 **c**hains;
//! * **S** — **s**ample BFS sources from what remains.
//!
//! # Quick start
//!
//! The engine is two-stage: **prepare once, query many**. Build a
//! [`PreparedGraph`] (reductions + biconnected decomposition), then run as
//! many queries against it as you like — different methods, rates and
//! seeds all reuse the same artifact.
//!
//! ```
//! use brics::{ExecutionContext, PreparedGraph, ReductionConfig, SampleSize};
//! use brics_graph::generators::{web_like, ClassParams};
//!
//! let g = web_like(ClassParams::new(2000, 42));
//! let ctx = ExecutionContext::new();
//!
//! // Prepare: reduction pipeline + Block-Cut Tree, paid exactly once.
//! let prepared = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap();
//!
//! // Query: the full BRICS pipeline at a 20 % sampling rate...
//! let est = prepared.cumulative(SampleSize::Fraction(0.2), 7, &ctx).unwrap();
//!
//! // ...and again at 50 % — no re-reduction, no re-decomposition.
//! let finer = prepared.cumulative(SampleSize::Fraction(0.5), 7, &ctx).unwrap();
//!
//! // Exact values for comparison: the scaled estimates land close.
//! let exact = prepared.exact(&ctx).unwrap();
//! let accuracy = brics::quality::symmetric_quality(est.scaled(), &exact);
//! assert!(accuracy > 0.7, "accuracy {accuracy}");
//!
//! // BFS sources carry their exact farness.
//! let v = (0..g.num_nodes() as u32).find(|&v| finer.is_sampled(v)).unwrap();
//! assert_eq!(finer.raw()[v as usize], exact[v as usize]);
//! ```
//!
//! For one-shot runs, [`BricsEstimator`] remains the single-call front
//! door (it builds the artifact internally), and [`ExecutionContext`]
//! attaches limits, kernel choice and telemetry to any call:
//!
//! ```
//! use brics::{BricsEstimator, ExecutionContext, Method, RunRecorder, SampleSize};
//! use brics_graph::generators::path_graph;
//!
//! let g = path_graph(50);
//! let rec = RunRecorder::new();
//! let ctx = ExecutionContext::new().with_recorder(&rec);
//! let est = BricsEstimator::new(Method::Cumulative)
//!     .sample(SampleSize::Fraction(0.3))
//!     .run_in(&g, &ctx)
//!     .unwrap();
//! assert!(!est.is_partial());
//! // The report separates prepare from estimate time.
//! let report = rec.report();
//! assert!(report.phases.iter().any(|p| p.name == "prepare"));
//! assert!(report.phases.iter().any(|p| p.name == "estimate"));
//! ```
//!
//! The crate is organised bottom-up: [`exact`] (ground truth),
//! [`sampling`] (the paper's Algorithm 1 baseline), [`reduced`]
//! (reductions without the biconnected decomposition — the paper's C+R and
//! I+C+R ablations) and [`cumulative`] (the full Algorithm 4–6 pipeline),
//! all running through the [`engine`] module's two-stage split.
//! [`BricsEstimator`] is the front door that dispatches between them.
//!
//! Extensions beyond the paper: [`topk`] (exact top-k closeness via the
//! estimators' lower bounds), [`dynamic`] (incremental updates under edge
//! insertion — the paper's stated future work), [`harmonic`] and
//! [`betweenness`] (the companion centrality metrics).

#![warn(missing_docs)]

pub mod betweenness;
mod budget;
pub mod config;
pub mod cumulative;
pub mod degrade;
pub mod dynamic;
pub mod engine;
mod error;
mod estimate;
pub mod exact;
pub mod harmonic;
pub mod quality;
pub mod reduced;
pub mod report;
pub mod sampling;
pub mod topk;

pub use config::{BricsEstimator, HybridParams, Kernel, KernelConfig, Method, SampleSize};
pub use degrade::{run_degraded, DegradationPolicy, DegradedEstimate, DegradedRequest};
pub use engine::{ArtifactInfo, ExecutionContext, MemoryPlan, PrepareConfig, PreparedGraph};
pub use error::CentralityError;
pub use estimate::FarnessEstimate;
pub use exact::{exact_farness, exact_farness_in};

// Re-exported so downstream users need only one crate in scope for the
// common flow (generate → estimate → compare).
pub use brics_graph::telemetry::{
    HistogramSummary, Metric, NullRecorder, ProgressConfig, ProgressMeter, Recorder, RunRecorder,
    RunReport,
};
pub use brics_graph::{CancelToken, RunControl, RunOutcome};
pub use brics_reduce::ReductionConfig;
