//! **BRICS** — parallel estimation of farness centrality on undirected
//! graphs, reproducing Regunta, Tondomker & Kothapalli, *"BRICS: Efficient
//! Techniques for Estimating the Farness-Centrality in Parallel"* (2019).
//!
//! The farness of a vertex is the sum of its shortest-path distances to all
//! other vertices (its reciprocal is the closeness centrality). Exact
//! computation needs one BFS per vertex; BRICS estimates it from a sampled
//! subset of BFS sources, and beats plain random sampling on both time and
//! estimate quality by exploiting graph structure:
//!
//! * **B** — decompose the graph into **b**iconnected components, sample
//!   *within* blocks (cut vertices always sampled), run block-local BFS and
//!   combine blocks exactly through the Block-Cut Tree;
//! * **R** — strip **r**edundant 3/4-degree vertices;
//! * **I** — strip **i**dentical vertices (equal neighbourhoods);
//! * **C** — strip redundant degree-2 **c**hains;
//! * **S** — **s**ample BFS sources from what remains.
//!
//! # Quick start
//!
//! ```
//! use brics::{BricsEstimator, Method, SampleSize};
//! use brics_graph::generators::{web_like, ClassParams};
//!
//! let g = web_like(ClassParams::new(2000, 42));
//!
//! // The full BRICS pipeline at a 20 % sampling rate.
//! let est = BricsEstimator::new(Method::Cumulative)
//!     .sample(SampleSize::Fraction(0.2))
//!     .seed(7)
//!     .run(&g)
//!     .unwrap();
//!
//! // Exact values for comparison: the scaled estimates land close.
//! let exact = brics::exact_farness(&g).unwrap();
//! let accuracy = brics::quality::symmetric_quality(est.scaled(), &exact);
//! assert!(accuracy > 0.7, "accuracy {accuracy}");
//!
//! // BFS sources carry their exact farness.
//! let v = (0..g.num_nodes() as u32).find(|&v| est.is_sampled(v)).unwrap();
//! assert_eq!(est.raw()[v as usize], exact[v as usize]);
//! ```
//!
//! The crate is organised bottom-up: [`exact`] (ground truth),
//! [`sampling`] (the paper's Algorithm 1 baseline), [`reduced`]
//! (reductions without the biconnected decomposition — the paper's C+R and
//! I+C+R ablations) and [`cumulative`] (the full Algorithm 4–6 pipeline).
//! [`BricsEstimator`] is the front door that dispatches between them.
//!
//! Extensions beyond the paper: [`topk`] (exact top-k closeness via the
//! estimators' lower bounds), [`dynamic`] (incremental updates under edge
//! insertion — the paper's stated future work), [`harmonic`] and
//! [`betweenness`] (the companion centrality metrics).

#![warn(missing_docs)]

pub mod betweenness;
mod budget;
pub mod config;
pub mod cumulative;
pub mod dynamic;
mod error;
mod estimate;
pub mod exact;
pub mod harmonic;
pub mod quality;
pub mod reduced;
pub mod report;
pub mod sampling;
pub mod topk;

pub use config::{BricsEstimator, HybridParams, Kernel, KernelConfig, Method, SampleSize};
pub use error::CentralityError;
pub use estimate::FarnessEstimate;
pub use exact::{exact_farness, exact_farness_ctl, exact_farness_ctl_rec, exact_farness_ctl_with};

// Re-exported so downstream users need only one crate in scope for the
// common flow (generate → estimate → compare).
pub use brics_graph::telemetry::{NullRecorder, Recorder, RunRecorder, RunReport};
pub use brics_graph::{CancelToken, RunControl, RunOutcome};
pub use brics_reduce::ReductionConfig;
