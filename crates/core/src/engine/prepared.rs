//! The prepared-graph artifact: the structure stage of the two-stage
//! engine.
//!
//! [`PreparedGraph::build`] pays the query-independent costs once —
//! optional degree reordering, the reduction pipeline, structural offsets,
//! and (for the Cumulative method) the biconnected decomposition with
//! homed records, per-block contexts, Phase A and the BCT sweep. Every
//! query method then runs against the artifact with only `(SampleSize,
//! seed)` varying, so a parameter scan or a method comparison re-reduces
//! nothing: the `reduce` telemetry span fires exactly once per artifact no
//! matter how many queries follow.

use crate::budget::{accumulate_run_bytes, cumulative_run_bytes, exact_run_bytes};
use crate::config::SampleSize;
use crate::cumulative::{cumulative_prepare, cumulative_query, CumulativePrep};
use crate::engine::ExecutionContext;
use crate::exact::exact_query;
use crate::harmonic::{harmonic_query, HarmonicEstimate};
use crate::reduced::reduced_query;
use crate::sampling::sampling_query;
use crate::topk::{top_k_scan, TopK};
use crate::{CentralityError, FarnessEstimate};
use brics_graph::control::panic_message;
use brics_graph::reorder::Relabeling;
use brics_graph::telemetry::{
    record_outcome, record_panic, timed, timed_metric, Counter, Metric, Recorder,
};
use brics_graph::traversal::Bfs;
use brics_graph::{CsrGraph, FaultKind, FaultSite, NodeId, RunOutcome};
use brics_reduce::{reduce_ctl_rec, structural_offsets, ReductionConfig, ReductionResult};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// What the prepare stage should build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrepareConfig {
    /// Which structural reductions to run (identical / chains / redundant).
    pub reductions: ReductionConfig,
    /// Build the biconnected decomposition (Block-Cut Tree, homing,
    /// Phase A, sweep) so [`PreparedGraph::cumulative`] is available.
    /// Costs the decomposition plus one BFS per cut vertex up front.
    pub use_bcc: bool,
    /// Relabel vertices by descending degree before anything else runs.
    /// Purely a cache-locality optimisation: every query result is
    /// translated back to original vertex ids.
    pub reorder: bool,
}

impl Default for PrepareConfig {
    fn default() -> Self {
        Self { reductions: ReductionConfig::all(), use_bcc: true, reorder: false }
    }
}

/// Precomputed memory-admission figures for one prepared graph, derived
/// from the vertex count and the planned worker-thread count. Queries
/// admit against these instead of recomputing them per call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// Bytes a flat accumulate run (sampling / reduced / harmonic /
    /// betweenness) needs: shared accumulator plus per-thread scratch.
    pub accumulate_bytes: u64,
    /// Bytes an exact all-sources sweep needs (per-thread scratch only).
    pub exact_bytes: u64,
    /// Bytes the Cumulative pipeline needs (BCT arrays plus per-thread
    /// block-local scratch).
    pub cumulative_bytes: u64,
}

impl MemoryPlan {
    /// Plans for an `n`-vertex graph and `threads` workers (clamped to 1).
    pub fn compute(n: usize, threads: usize) -> Self {
        Self {
            accumulate_bytes: accumulate_run_bytes(n, threads),
            exact_bytes: exact_run_bytes(n, threads),
            cumulative_bytes: cumulative_run_bytes(n, threads),
        }
    }
}

/// The prepare-stage artifact: reduction result, removal records,
/// structural offsets, the optional Block-Cut-Tree state, the optional
/// degree-reorder permutation and a [`MemoryPlan`].
///
/// Build one with [`PreparedGraph::build`] (or [`build_with`] for
/// non-default [`PrepareConfig`]s), then run any number of queries against
/// it. The artifact borrows the original graph; all query results are
/// reported in original vertex ids even when `reorder` is on.
///
/// ```
/// use brics::{ExecutionContext, PreparedGraph, ReductionConfig, SampleSize};
/// use brics_graph::generators::{social_like, ClassParams};
///
/// let g = social_like(ClassParams::new(400, 5));
/// let ctx = ExecutionContext::new();
/// let p = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap();
/// // One reduction + decomposition serves every query:
/// let a = p.cumulative(SampleSize::Fraction(0.2), 1, &ctx).unwrap();
/// let b = p.cumulative(SampleSize::Fraction(0.5), 1, &ctx).unwrap();
/// let c = p.reduced(SampleSize::Fraction(0.2), 1, &ctx).unwrap();
/// assert_eq!(a.len(), g.num_nodes());
/// assert_eq!(b.len(), c.len());
/// ```
///
/// [`build_with`]: PreparedGraph::build_with
pub struct PreparedGraph<'g> {
    /// Borrowed on a fresh [`build`](Self::build); owned when the artifact
    /// was deserialized from disk ([`crate::engine::artifact::load`]
    /// returns `PreparedGraph<'static>`).
    pub(crate) original: Cow<'g, CsrGraph>,
    /// Present iff `config.reorder`: queries run on `relabel.graph` and
    /// translate back through the permutation.
    pub(crate) relabel: Option<Relabeling>,
    pub(crate) config: PrepareConfig,
    /// The reduction of the working graph (records *not* homed/restored —
    /// the BCT state keeps its own restored copy).
    pub(crate) red: ReductionResult,
    /// Total structural-offset mass of the removal records — the de-bias
    /// term of the scaled view (DESIGN.md §5).
    pub(crate) offset_total: u64,
    /// Surviving vertices in working-graph ids, ascending.
    pub(crate) survivors: Vec<NodeId>,
    pub(crate) plan: MemoryPlan,
    pub(crate) bcc: Option<CumulativePrep>,
    pub(crate) prepare_elapsed: Duration,
    /// Prepare-stage fallbacks taken under an armed degradation policy:
    /// `"reduce:skipped"` and/or `"bct:skipped"`. Empty on a clean build
    /// (a panicked stage that *recovered on retry* leaves no entry).
    pub(crate) prepare_degradation: Vec<String>,
}

impl std::fmt::Debug for PreparedGraph<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedGraph")
            .field("num_nodes", &self.original.num_nodes())
            .field("num_surviving", &self.survivors.len())
            .field("config", &self.config)
            .field("reordered", &self.relabel.is_some())
            .field("has_bcc", &self.bcc.is_some())
            .field("prepare_elapsed", &self.prepare_elapsed)
            .finish_non_exhaustive()
    }
}

impl<'g> PreparedGraph<'g> {
    /// Builds the default artifact: the given reductions plus the full
    /// biconnected decomposition, no reordering. Equivalent to
    /// [`build_with`](Self::build_with) with those [`PrepareConfig`] fields.
    pub fn build<R: Recorder>(
        g: &'g CsrGraph,
        reductions: &ReductionConfig,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<Self, CentralityError> {
        Self::build_with(g, PrepareConfig { reductions: *reductions, ..Default::default() }, ctx)
    }

    /// Runs the prepare stage under `cfg`.
    ///
    /// The whole stage runs inside a `prepare` telemetry span (with the
    /// single `reduce` span nested in it). Interruption by the context's
    /// control surfaces as [`CentralityError::Interrupted`]; a BCC build
    /// additionally requires a connected graph, and memory admission uses
    /// the largest figure any enabled stage will need.
    pub fn build_with<R: Recorder>(
        g: &'g CsrGraph,
        cfg: PrepareConfig,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<Self, CentralityError> {
        let n = g.num_nodes();
        if n == 0 {
            return Err(CentralityError::EmptyGraph);
        }
        let rec = ctx.recorder();
        let ctl = ctx.control();
        let start = Instant::now();
        timed(rec, "prepare", || {
            let relabel = if cfg.reorder { Some(g.reorder_by_degree()) } else { None };
            let working: &CsrGraph = relabel.as_ref().map_or(g, |r| &r.graph);
            let plan = MemoryPlan::compute(n, ctx.thread_count());

            // Admission: charge the largest run the artifact enables, so a
            // budget that cannot afford the queries fails here, up front.
            if cfg.use_bcc {
                brics_graph::telemetry::admit_memory_rec(ctl, plan.cumulative_bytes, rec)?;
            } else if cfg.reductions.any() {
                brics_graph::telemetry::admit_memory_rec(ctl, plan.accumulate_bytes, rec)?;
            }

            // Connectivity gate: the BCT combination assumes one component.
            if cfg.use_bcc {
                let mut bfs = Bfs::new(n);
                let (reached, _) = bfs.run_with(working, 0, |_, _| {});
                if reached != n {
                    let comps =
                        brics_graph::connectivity::connected_components(working).count();
                    return Err(CentralityError::Disconnected { components: comps });
                }
            }

            let degrade = ctx.degradation().is_some();
            let mut prepare_degradation: Vec<String> = Vec::new();

            // The reduction pipeline runs panic-isolated: a panic (e.g. an
            // injected `reduce.rule` fault) is retried once when a
            // degradation policy is armed, then the build falls back to an
            // unreduced artifact rather than failing. Without a policy the
            // panic becomes a plain `Internal` error instead of unwinding
            // through the caller.
            let reduce_attempt = |reductions: &ReductionConfig| {
                catch_unwind(AssertUnwindSafe(|| {
                    timed(rec, "reduce", || reduce_ctl_rec(working, reductions, ctl, rec))
                }))
                .map_err(|p| panic_message(p.as_ref()))
            };
            let reduced = match reduce_attempt(&cfg.reductions) {
                Ok(r) => r,
                Err(detail) => {
                    record_panic(rec, &detail);
                    if !degrade {
                        return Err(CentralityError::Internal { detail });
                    }
                    rec.add(Counter::FaultRetries, 1);
                    match reduce_attempt(&cfg.reductions) {
                        Ok(r) => r,
                        Err(detail2) => {
                            record_panic(rec, &detail2);
                            prepare_degradation.push("reduce:skipped".to_string());
                            reduce_attempt(&ReductionConfig::none()).map_err(|detail3| {
                                record_panic(rec, &detail3);
                                CentralityError::Internal { detail: detail3 }
                            })?
                        }
                    }
                }
            };
            let red = match reduced {
                Ok(r) => r,
                Err(outcome) => {
                    record_outcome(rec, outcome, "reduction pipeline interrupted");
                    return Err(CentralityError::Interrupted { outcome });
                }
            };
            let offset_total: u64 =
                structural_offsets(&red.records, n).iter().map(|&o| o as u64).sum();
            let survivors = red.surviving();

            // The BCT build gets the same isolation, plus its own failpoint
            // (`bct.build`). Under a degradation policy a twice-failed build
            // degrades to an artifact without BCT state — `cumulative`
            // queries then fall through the ladder instead of the whole
            // prepare failing.
            let bct_attempt = || {
                catch_unwind(AssertUnwindSafe(|| {
                    match ctl.fault_apply(FaultSite::BctBuild, 0) {
                        Some(FaultKind::Panic) => {
                            panic!("injected worker panic (bct.build)")
                        }
                        Some(FaultKind::IoError) => {
                            panic!("injected i/o error (bct.build)")
                        }
                        _ => {}
                    }
                    cumulative_prepare(n, red.clone(), ctl, ctx.kernel(), rec)
                }))
                .map_err(|p| panic_message(p.as_ref()))
            };
            let bcc = if cfg.use_bcc {
                match bct_attempt() {
                    Ok(Ok(prep)) => Some(prep),
                    Ok(Err(e)) => {
                        if !degrade {
                            return Err(e);
                        }
                        prepare_degradation.push("bct:skipped".to_string());
                        None
                    }
                    Err(detail) => {
                        record_panic(rec, &detail);
                        if !degrade {
                            return Err(CentralityError::Internal { detail });
                        }
                        rec.add(Counter::FaultRetries, 1);
                        match bct_attempt() {
                            Ok(Ok(prep)) => Some(prep),
                            Ok(Err(_)) => {
                                prepare_degradation.push("bct:skipped".to_string());
                                None
                            }
                            Err(detail2) => {
                                record_panic(rec, &detail2);
                                prepare_degradation.push("bct:skipped".to_string());
                                None
                            }
                        }
                    }
                }
            } else {
                None
            };

            Ok(Self {
                original: Cow::Borrowed(g),
                relabel,
                config: cfg,
                red,
                offset_total,
                survivors,
                plan,
                bcc,
                prepare_elapsed: start.elapsed(),
                prepare_degradation,
            })
        })
    }

    // ---- Accessors ----------------------------------------------------

    /// The graph queries actually traverse: the relabelled graph when
    /// `reorder` is on, the original otherwise. Vertex ids of this graph
    /// are *working ids*; every query translates back before returning.
    pub fn working(&self) -> &CsrGraph {
        self.relabel.as_ref().map_or(&*self.original, |r| &r.graph)
    }

    /// The original graph the artifact was built from.
    pub fn original(&self) -> &CsrGraph {
        &self.original
    }

    /// The configuration the artifact was built with.
    pub fn config(&self) -> &PrepareConfig {
        &self.config
    }

    /// Number of vertices surviving the reduction.
    pub fn num_surviving(&self) -> usize {
        self.survivors.len()
    }

    /// Total structural-offset mass of the removal records.
    pub fn offset_total(&self) -> u64 {
        self.offset_total
    }

    /// The precomputed memory-admission figures.
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// Wall-clock time the prepare stage took.
    pub fn prepare_elapsed(&self) -> Duration {
        self.prepare_elapsed
    }

    /// Whether the artifact carries the Block-Cut-Tree state
    /// ([`PreparedGraph::cumulative`] requires it).
    pub fn has_bcc(&self) -> bool {
        self.bcc.is_some()
    }

    /// The degree-reorder permutation, when `reorder` was requested.
    pub fn relabeling(&self) -> Option<&Relabeling> {
        self.relabel.as_ref()
    }

    /// Prepare-stage fallbacks taken under an armed degradation policy
    /// (`"reduce:skipped"`, `"bct:skipped"`); empty on a clean build.
    pub fn prepare_degradation(&self) -> &[String] {
        &self.prepare_degradation
    }

    // ---- Translation helpers ------------------------------------------

    /// Translates a per-vertex vector from working ids back to originals.
    fn untranslate<T: Copy + Default>(&self, values: Vec<T>) -> Vec<T> {
        match &self.relabel {
            Some(r) => r.to_original_order(&values),
            None => values,
        }
    }

    /// Rebuilds an estimate computed in working ids in original-id order.
    fn untranslate_estimate(&self, est: FarnessEstimate) -> FarnessEstimate {
        let Some(r) = &self.relabel else { return est };
        FarnessEstimate::new(
            r.to_original_order(est.raw()),
            r.to_original_order(est.scaled()),
            r.to_original_order(est.sampled_mask()),
            r.to_original_order(est.coverage()),
            est.num_sources(),
            est.elapsed(),
            est.outcome(),
        )
    }

    // ---- Queries -------------------------------------------------------

    /// Exact farness of every vertex: one BFS per vertex on the working
    /// graph. All-or-nothing — interruption is an error, not a partial.
    pub fn exact<R: Recorder>(
        &self,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<Vec<u64>, CentralityError> {
        let rec = ctx.recorder();
        let values = timed_metric(rec, "estimate", Metric::QueryNanos, || {
            exact_query(self.working(), self.plan.exact_bytes, ctx.control(), ctx.kernel(), rec)
        })?;
        Ok(self.untranslate(values))
    }

    /// Random-sampling estimate (paper Algorithm 1) on the working graph.
    /// Ignores the reduction — the baseline every other method is compared
    /// against, available from the same artifact for free.
    pub fn sample<R: Recorder>(
        &self,
        sample: SampleSize,
        seed: u64,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<FarnessEstimate, CentralityError> {
        let rec = ctx.recorder();
        let est = timed_metric(rec, "estimate", Metric::QueryNanos, || {
            sampling_query(
                self.working(),
                sample,
                seed,
                self.plan.accumulate_bytes,
                ctx.control(),
                ctx.kernel(),
                rec,
            )
        })?;
        Ok(self.untranslate_estimate(est))
    }

    /// Quarantine-and-retry sampling sweep over an explicit working-graph
    /// source set — the degradation ladder's rungs run through this.
    pub(crate) fn resilient_on<R: Recorder>(
        &self,
        sources: &[NodeId],
        policy: &crate::degrade::DegradationPolicy,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<crate::degrade::ResilientRun, CentralityError> {
        let rec = ctx.recorder();
        let run = timed_metric(rec, "estimate", Metric::QueryNanos, || {
            crate::degrade::resilient_sources_query(
                self.working(),
                sources,
                self.plan.accumulate_bytes,
                policy,
                ctx.control(),
                ctx.kernel(),
                rec,
            )
        })?;
        Ok(crate::degrade::ResilientRun {
            estimate: self.untranslate_estimate(run.estimate),
            retries: run.retries,
            quarantined: run.quarantined,
        })
    }

    /// Reduction-based estimate (paper Algorithms 2–3): sources drawn from
    /// the survivors, BFS on the reduced graph, removal log replayed per
    /// source. Uses the artifact's reduction — nothing is recomputed.
    pub fn reduced<R: Recorder>(
        &self,
        sample: SampleSize,
        seed: u64,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<FarnessEstimate, CentralityError> {
        let rec = ctx.recorder();
        let est = timed_metric(rec, "estimate", Metric::QueryNanos, || {
            reduced_query(
                self.working(),
                &self.red,
                &self.survivors,
                self.offset_total,
                self.plan.accumulate_bytes,
                sample,
                seed,
                ctx.control(),
                rec,
            )
        })?;
        Ok(self.untranslate_estimate(est))
    }

    /// Exact farness via the reduction: every survivor is a source, and
    /// removed vertices are completed with one true BFS each on the working
    /// graph. Cheaper than [`PreparedGraph::exact`] when the removed set is
    /// small; mainly a stronger oracle for the reconstruction path.
    pub fn reduced_exact<R: Recorder>(
        &self,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<Vec<u64>, CentralityError> {
        let rec = ctx.recorder();
        timed_metric(rec, "estimate", Metric::QueryNanos, || {
            let n = self.original.num_nodes();
            let est = reduced_query(
                self.working(),
                &self.red,
                &self.survivors,
                self.offset_total,
                self.plan.accumulate_bytes,
                SampleSize::Fraction(1.0),
                0,
                ctx.control(),
                rec,
            )?;
            if est.is_partial() {
                return Err(CentralityError::Interrupted { outcome: est.outcome() });
            }
            // Every survivor was a source, so survivors are exact. A removed
            // vertex x holds Σ_{s surviving} d(s, x), which misses its
            // distances to the *other removed* vertices; complete those with
            // one true BFS per removed vertex.
            let working = self.working();
            let removed: Vec<NodeId> =
                (0..n as NodeId).filter(|&v| self.red.removed[v as usize]).collect();
            let mut values = est.raw().to_vec();
            let sums: Vec<(NodeId, u64)> = removed
                .par_iter()
                .map_init(
                    || Bfs::new(n),
                    |bfs, &x| {
                        let (_, sum) = bfs.run_with(working, x, |_, _| {});
                        (x, sum)
                    },
                )
                .collect();
            if rec.enabled() {
                rec.add(Counter::BfsSources, sums.len() as u64);
            }
            for (x, sum) in sums {
                values[x as usize] = sum;
            }
            Ok(self.untranslate(values))
        })
    }

    /// The full Cumulative estimate (paper Algorithms 4–6) against the
    /// prepared Block-Cut-Tree state: only the sampled-source Phase B and
    /// the assembly run per query.
    ///
    /// Errors with [`CentralityError::Internal`] if the artifact was built
    /// with `use_bcc: false`.
    pub fn cumulative<R: Recorder>(
        &self,
        sample: SampleSize,
        seed: u64,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<FarnessEstimate, CentralityError> {
        let Some(prep) = &self.bcc else {
            return Err(CentralityError::Internal {
                detail: "cumulative query on an artifact built with use_bcc: false".into(),
            });
        };
        let rec = ctx.recorder();
        let est = timed_metric(rec, "estimate", Metric::QueryNanos, || {
            cumulative_query(
                self.original.num_nodes(),
                prep,
                sample,
                seed,
                self.plan.cumulative_bytes,
                ctx.control(),
                ctx.kernel(),
                rec,
            )
        })?;
        Ok(self.untranslate_estimate(est))
    }

    /// Exact top-k closeness using an estimate from this artifact for
    /// pruning: Cumulative when the BCT state is present, reduced
    /// otherwise. Interruption surfaces as an error — a partial top-k
    /// certificate is worthless. Verification BFS are cut against the
    /// running k-th best ([`brics_graph::traversal::BfsCut`]).
    pub fn topk<R: Recorder>(
        &self,
        k: usize,
        sample: SampleSize,
        seed: u64,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<TopK, CentralityError> {
        self.topk_with(k, sample, seed, true, ctx)
    }

    /// [`PreparedGraph::topk`] with an explicit pruning switch
    /// (`prune = false` runs every verification sweep to completion — the
    /// equivalence-testing fallback; `ranked` is identical either way).
    ///
    /// Verification runs on the **reduced** graph when the reduction kept
    /// it unweighted: survivor candidates sweep `red.graph` and replay the
    /// removal log for the removed vertices' exact mass, with the cut
    /// bound corrected by a per-removed-vertex farness floor
    /// (Σ max(structural offset, 1) — every removed vertex is at least
    /// one hop from any survivor, and at least its replayed offset over a
    /// zero distance field). Chain contractions introduce arc weights the
    /// level-synchronous cut sweep cannot honor, so weighted reductions
    /// (and removed-vertex candidates, which are isolated on the reduced
    /// graph) verify on the working graph instead.
    pub fn topk_with<R: Recorder>(
        &self,
        k: usize,
        sample: SampleSize,
        seed: u64,
        prune: bool,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<TopK, CentralityError> {
        let rec = ctx.recorder();
        // Verification must run in working ids (the estimate's sampled mask
        // and raw values index the working graph), so translate only the
        // final ranking.
        let est = timed_metric(rec, "estimate", Metric::QueryNanos, || match &self.bcc {
            Some(prep) => cumulative_query(
                self.original.num_nodes(),
                prep,
                sample,
                seed,
                self.plan.cumulative_bytes,
                ctx.control(),
                ctx.kernel(),
                rec,
            ),
            None => reduced_query(
                self.working(),
                &self.red,
                &self.survivors,
                self.offset_total,
                self.plan.accumulate_bytes,
                sample,
                seed,
                ctx.control(),
                rec,
            ),
        })?;
        let working = self.working();
        // The scan charges its own per-BFS counters (actual vertices and
        // arcs scanned), so no bulk accounting happens here.
        let reduced_ctx = if self.red.weights.is_none() {
            let offsets = structural_offsets(&self.red.records, working.num_nodes());
            let removed_floor: u64 = self
                .red
                .removed
                .iter()
                .zip(&offsets)
                .filter(|&(&r, _)| r)
                .map(|(_, &o)| (o as u64).max(1))
                .sum();
            Some(crate::topk::ReducedVerify {
                graph: &self.red.graph,
                removed: &self.red.removed,
                records: &self.red.records,
                num_surviving: self.survivors.len(),
                removed_floor,
            })
        } else {
            None
        };
        let mut t = timed(rec, "topk.verify", || {
            top_k_scan(working, k, &est, prune, reduced_ctx.as_ref(), ctx.control(), rec)
        })?;
        if let Some(r) = &self.relabel {
            for (v, _) in &mut t.ranked {
                *v = r.old_of_new[*v as usize];
            }
        }
        Ok(t)
    }

    /// Harmonic-centrality estimate on the working graph (sampling with
    /// fixed-point reciprocal sums; robust to disconnection).
    pub fn harmonic<R: Recorder>(
        &self,
        sample: SampleSize,
        seed: u64,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<HarmonicEstimate, CentralityError> {
        let rec = ctx.recorder();
        let est = timed_metric(rec, "estimate", Metric::QueryNanos, || {
            harmonic_query(
                self.working(),
                self.plan.accumulate_bytes,
                sample,
                seed,
                ctx.control(),
                rec,
            )
        })?;
        Ok(HarmonicEstimate {
            values: self.untranslate(est.values),
            scaled: self.untranslate(est.scaled),
            sampled: self.untranslate(est.sampled),
            outcome: est.outcome,
        })
    }

    /// Sampled betweenness (Brandes over sampled pivots) on the working
    /// graph. Returns the scaled per-vertex values and the run outcome.
    pub fn betweenness<R: Recorder>(
        &self,
        sample: SampleSize,
        seed: u64,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<(Vec<f64>, RunOutcome), CentralityError> {
        let rec = ctx.recorder();
        let (values, outcome) = timed_metric(rec, "estimate", Metric::QueryNanos, || {
            crate::betweenness::betweenness_query(
                self.working(),
                self.plan.accumulate_bytes,
                sample,
                seed,
                ctx.control(),
                rec,
            )
        })?;
        Ok((self.untranslate(values), outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cumulative::cumulative_estimate;
    use crate::exact_farness;
    use crate::reduced::reduced_estimate;
    use crate::sampling::random_sampling;
    use brics_graph::generators::{gnm_random_connected, social_like, ClassParams};
    use brics_graph::telemetry::RunRecorder;
    use brics_graph::RunControl;

    #[test]
    fn one_artifact_many_queries_matches_one_shots() {
        let g = social_like(ClassParams::new(300, 9));
        let ctx = ExecutionContext::new();
        let p = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap();
        for &rate in &[0.2, 0.6] {
            let a = p.cumulative(SampleSize::Fraction(rate), 5, &ctx).unwrap();
            let b =
                cumulative_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(rate), 5)
                    .unwrap();
            assert_eq!(a.raw(), b.raw(), "rate {rate}");
            assert_eq!(a.scaled(), b.scaled(), "rate {rate}");
            let c = p.reduced(SampleSize::Fraction(rate), 5, &ctx).unwrap();
            let d =
                reduced_estimate(&g, &ReductionConfig::all(), SampleSize::Fraction(rate), 5)
                    .unwrap();
            assert_eq!(c.raw(), d.raw(), "rate {rate}");
            let e = p.sample(SampleSize::Fraction(rate), 5, &ctx).unwrap();
            let f = random_sampling(&g, SampleSize::Fraction(rate), 5).unwrap();
            assert_eq!(e.raw(), f.raw(), "rate {rate}");
        }
        assert_eq!(p.exact(&ctx).unwrap(), exact_farness(&g).unwrap());
    }

    #[test]
    fn reduce_span_fires_once_across_queries() {
        let g = social_like(ClassParams::new(250, 3));
        let rec = RunRecorder::new();
        let ctx = ExecutionContext::new().with_recorder(&rec);
        let p = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap();
        p.cumulative(SampleSize::Fraction(0.2), 1, &ctx).unwrap();
        p.cumulative(SampleSize::Fraction(0.5), 2, &ctx).unwrap();
        p.reduced(SampleSize::Count(10), 3, &ctx).unwrap();
        let report = rec.report();
        let reduce: Vec<_> =
            report.phases.iter().filter(|ph| ph.name == "reduce").collect();
        assert_eq!(reduce.len(), 1, "one aggregated reduce phase");
        assert_eq!(reduce[0].count, 1, "the reduction ran exactly once");
        let prepare = report.phases.iter().find(|ph| ph.name == "prepare").unwrap();
        assert_eq!(prepare.count, 1);
        let estimate = report.phases.iter().find(|ph| ph.name == "estimate").unwrap();
        assert_eq!(estimate.count, 3, "three queries, three estimate spans");
    }

    #[test]
    fn reorder_translates_everything_back() {
        let g = social_like(ClassParams::new(300, 11));
        let ctx = ExecutionContext::new();
        let cfg = PrepareConfig { reorder: true, ..Default::default() };
        let p = PreparedGraph::build_with(&g, cfg, &ctx).unwrap();
        let plain = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap();
        assert_eq!(p.exact(&ctx).unwrap(), plain.exact(&ctx).unwrap());
        // Sampling picks different sources under the permutation, but the
        // estimates stay indexed by original ids and exact values agree on
        // the overlap.
        let exact = exact_farness(&g).unwrap();
        let est = p.cumulative(SampleSize::Fraction(0.4), 2, &ctx).unwrap();
        for v in 0..g.num_nodes() as u32 {
            if est.is_sampled(v) {
                assert_eq!(est.raw()[v as usize], exact[v as usize], "v {v}");
            }
        }
        // Top-k ranking is id-exact regardless of the permutation.
        let t = p.topk(5, SampleSize::Fraction(0.4), 2, &ctx).unwrap();
        let t_plain = plain.topk(5, SampleSize::Fraction(0.4), 2, &ctx).unwrap();
        assert_eq!(t.ranked, t_plain.ranked);
        // reduced_exact is exact in original ids too.
        assert_eq!(p.reduced_exact(&ctx).unwrap(), exact);
    }

    #[test]
    fn cumulative_requires_bcc_state() {
        let g = gnm_random_connected(50, 80, 1);
        let ctx = ExecutionContext::new();
        let cfg = PrepareConfig { use_bcc: false, ..Default::default() };
        let p = PreparedGraph::build_with(&g, cfg, &ctx).unwrap();
        assert!(!p.has_bcc());
        let err = p.cumulative(SampleSize::Count(5), 0, &ctx).unwrap_err();
        assert!(matches!(err, CentralityError::Internal { .. }));
        // The reduced/sample/exact queries still work.
        assert!(p.reduced(SampleSize::Count(5), 0, &ctx).is_ok());
        assert!(p.sample(SampleSize::Count(5), 0, &ctx).is_ok());
    }

    #[test]
    fn build_respects_control() {
        let g = social_like(ClassParams::new(300, 2));
        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_timeout(std::time::Duration::ZERO));
        let err =
            PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap_err();
        assert!(matches!(err, CentralityError::Interrupted { .. }));
        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_memory_budget_bytes(8));
        let err =
            PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap_err();
        assert!(matches!(err, CentralityError::BudgetExceeded { .. }));
    }

    #[test]
    fn disconnected_rejected_at_build_when_bcc() {
        let g = brics_graph::GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]);
        let ctx = ExecutionContext::new();
        let err = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap_err();
        assert!(matches!(err, CentralityError::Disconnected { components: 2 }));
        // Without BCC the build succeeds; the flat queries report the
        // disconnection themselves.
        let cfg = PrepareConfig { use_bcc: false, reductions: ReductionConfig::none(), reorder: false };
        let p = PreparedGraph::build_with(&g, cfg, &ctx).unwrap();
        assert!(matches!(
            p.sample(SampleSize::Fraction(1.0), 0, &ctx),
            Err(CentralityError::Disconnected { .. })
        ));
    }

    #[test]
    fn topk_pruned_matches_full_through_both_verify_gates() {
        let ctx = ExecutionContext::new();
        let brute = |g: &brics_graph::CsrGraph, k: usize| {
            let exact = exact_farness(g).unwrap();
            let mut idx: Vec<u32> = (0..g.num_nodes() as u32).collect();
            idx.sort_by_key(|&v| (exact[v as usize], v));
            idx[..k].iter().map(|&v| (v, exact[v as usize])).collect::<Vec<_>>()
        };

        // Gate 1: contraction disabled keeps the reduced graph unweighted,
        // so survivor sweeps verify on it with the removed-vertex floor.
        let g = social_like(ClassParams::new(400, 4));
        let cfg = PrepareConfig {
            reductions: ReductionConfig::all().without_contraction(),
            ..Default::default()
        };
        let p = PreparedGraph::build_with(&g, cfg, &ctx).unwrap();
        assert!(p.red.weights.is_none(), "no contraction, no weights");
        assert!(p.red.removed.iter().any(|&r| r), "reductions fired");
        let k = 6;
        let pruned = p.topk_with(k, SampleSize::Fraction(0.15), 11, true, &ctx).unwrap();
        let full = p.topk_with(k, SampleSize::Fraction(0.15), 11, false, &ctx).unwrap();
        assert_eq!(pruned.ranked, brute(&g, k));
        assert_eq!(pruned.ranked, full.ranked);
        assert_eq!(full.pruned_bfs, 0, "full mode never cuts");

        // Gate 2: chain contraction introduces arc weights the cut sweep
        // cannot honor, so verification falls back to the working graph.
        // Barbell: two K6 cliques joined by a 20-vertex non-redundant
        // chain, which contracts into one weighted edge.
        let mut edges = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                edges.push((a, b));
            }
        }
        for a in 26..32u32 {
            for b in (a + 1)..32 {
                edges.push((a, b));
            }
        }
        for v in 5..26u32 {
            edges.push((v, v + 1));
        }
        let g2 = brics_graph::GraphBuilder::from_edges(32, &edges);
        let p2 = PreparedGraph::build(&g2, &ReductionConfig::all(), &ctx).unwrap();
        assert!(p2.red.weights.is_some(), "the barbell chain contracts");
        let k2 = 5;
        let pruned2 = p2.topk_with(k2, SampleSize::Fraction(0.5), 3, true, &ctx).unwrap();
        let full2 = p2.topk_with(k2, SampleSize::Fraction(0.5), 3, false, &ctx).unwrap();
        assert_eq!(pruned2.ranked, brute(&g2, k2));
        assert_eq!(pruned2.ranked, full2.ranked);
        assert_eq!(full2.pruned_bfs, 0);
    }

    #[test]
    fn memory_plan_exposed_and_sane() {
        let g = gnm_random_connected(100, 150, 3);
        let ctx = ExecutionContext::new().with_threads(2);
        let p = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap();
        assert_eq!(*p.plan(), MemoryPlan::compute(100, 2));
        assert!(p.plan().cumulative_bytes > p.plan().exact_bytes);
        assert!(p.num_surviving() <= 100);
        assert!(p.prepare_elapsed() > Duration::ZERO);
    }
}
