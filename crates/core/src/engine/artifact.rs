//! Persistence for [`PreparedGraph`]s: the *cold-start* half of the
//! two-stage engine.
//!
//! [`PreparedGraph::save`] lays the complete prepare-stage state out as
//! sections of a `brics.artifact/v1` container
//! ([`brics_graph::artifact`]): both CSR graphs as raw little-endian
//! arrays, the removal log, the reorder permutation, the Block-Cut-Tree
//! state and a provenance document. [`PreparedGraph::load`] reverses it
//! with **zero recomputation** — no reduction, no decomposition, no
//! `reduce` telemetry span — and, on a 64-bit little-endian unix host,
//! serves the CSR sections *in place* from the file mapping
//! ([`brics_graph::storage::Buffer`]): queries then traverse the mapped
//! bytes directly, and the `artifact_bytes_mapped` / `artifact_bytes_copied`
//! counters record which path every section took.
//!
//! Everything the queries consume is integer state, so a loaded artifact
//! answers every query bit-identically to the fresh build that produced
//! it (pinned by the `artifact_roundtrip` integration tests). The one
//! piece recomputed at load is the [`MemoryPlan`]: admission figures
//! depend on the *loading* context's thread plan, exactly as a fresh
//! prepare would compute them.

use crate::cumulative::CumulativePrep;
use crate::engine::{ExecutionContext, MemoryPlan, PrepareConfig, PreparedGraph};
use crate::CentralityError;
use brics_graph::artifact::{ArtifactReader, ArtifactWriter, FORMAT_VERSION};
use brics_graph::reorder::Relabeling;
use brics_graph::storage::{Buffer, SectionLoad};
use brics_graph::telemetry::{timed, Counter, Recorder};
use brics_graph::{CsrGraph, NodeId};
use brics_reduce::{ReductionResult, ReductionStats, Removal};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::path::Path;
use std::time::Duration;

/// Schema tag of the payload layout this module writes. Distinct from the
/// container version: the container guarantees integrity, this string says
/// what the sections *mean*.
pub const SCHEMA: &str = "brics.prepared-graph/v1";

// Section ids. The container requires uniqueness, nothing else; ids are
// stable across releases (new state gets new ids, absent optional state
// simply omits its section).
const SEC_ORIG_OFFSETS: u32 = 1;
const SEC_ORIG_TARGETS: u32 = 2;
const SEC_RED_OFFSETS: u32 = 3;
const SEC_RED_TARGETS: u32 = 4;
const SEC_RED_WEIGHTS: u32 = 5;
const SEC_RED_REMOVED: u32 = 6;
const SEC_RED_RECORDS: u32 = 7;
const SEC_RED_STATS: u32 = 8;
const SEC_SURVIVORS: u32 = 9;
const SEC_CONFIG: u32 = 10;
const SEC_PLAN: u32 = 11;
const SEC_BCC: u32 = 12;
const SEC_META: u32 = 13;
const SEC_PROVENANCE: u32 = 14;
const SEC_RELABEL_OFFSETS: u32 = 15;
const SEC_RELABEL_TARGETS: u32 = 16;
const SEC_RELABEL_NEW_OF_OLD: u32 = 17;
const SEC_RELABEL_OLD_OF_NEW: u32 = 18;

/// What a save or load reports about the artifact it touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactInfo {
    /// Container format version.
    pub version: u32,
    /// Whole-container digest (checksum of the section checksums) —
    /// identical whether computed at save or load time.
    pub checksum: u64,
    /// The file path, as given.
    pub path: String,
    /// Free-form provenance: what graph this artifact was prepared from.
    pub source: String,
    /// Total container size in bytes.
    pub bytes: u64,
}

/// Scalar prepare-stage state that rides along as one JSON section.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArtifactMeta {
    offset_total: u64,
    prepare_elapsed: Duration,
    prepare_degradation: Vec<String>,
    num_nodes: u64,
}

/// The provenance document: schema tag plus the source description the
/// saver passed in (typically the input graph path).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ProvenanceDoc {
    schema: String,
    source: String,
}

fn artifact_err(detail: String) -> CentralityError {
    CentralityError::Artifact { detail }
}

fn u32s_bytes(values: &[u32]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn usizes_bytes(values: &[usize]) -> Vec<u8> {
    values.iter().flat_map(|&v| (v as u64).to_le_bytes()).collect()
}

fn json_bytes<T: Serialize>(value: &T, what: &str) -> Result<Vec<u8>, CentralityError> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        .map_err(|e| artifact_err(format!("encoding {what} section: {e}")))
}

fn parse_u32s(bytes: &[u8], what: &str) -> Result<Vec<u32>, CentralityError> {
    if bytes.len() % 4 != 0 {
        return Err(artifact_err(format!(
            "{what} section length {} is not a multiple of 4",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect())
}

fn parse_json<T: Deserialize>(bytes: &[u8], what: &str) -> Result<T, CentralityError> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| artifact_err(format!("{what} section is not UTF-8: {e}")))?;
    serde_json::from_str(s).map_err(|e| artifact_err(format!("decoding {what} section: {e}")))
}

fn required<'r>(
    reader: &'r ArtifactReader,
    id: u32,
    what: &str,
) -> Result<&'r [u8], CentralityError> {
    reader
        .section_bytes(id)
        .ok_or_else(|| artifact_err(format!("missing required section {id} ({what})")))
}

/// Reconstructs one CSR graph from an (offsets, targets) section pair,
/// serving both sections in place when the backend allows it and tallying
/// the outcome into the mapped/copied byte counts.
fn load_csr(
    reader: &ArtifactReader,
    offsets_id: u32,
    targets_id: u32,
    what: &str,
    mapped: &mut u64,
    copied: &mut u64,
) -> Result<CsrGraph, CentralityError> {
    let (off_at, off_len) = reader
        .section_range(offsets_id)
        .ok_or_else(|| artifact_err(format!("missing required section {offsets_id} ({what} offsets)")))?;
    let (tgt_at, tgt_len) = reader
        .section_range(targets_id)
        .ok_or_else(|| artifact_err(format!("missing required section {targets_id} ({what} targets)")))?;
    if off_len % 8 != 0 || tgt_len % 4 != 0 {
        return Err(artifact_err(format!("{what}: CSR section lengths misaligned")));
    }
    let (offsets, off_load) = Buffer::usize_section(reader.file(), off_at, off_len / 8)
        .map_err(|e| artifact_err(format!("{what} offsets: {e}")))?;
    let (targets, tgt_load) = Buffer::u32_section(reader.file(), tgt_at, tgt_len / 4)
        .map_err(|e| artifact_err(format!("{what} targets: {e}")))?;
    for load in [off_load, tgt_load] {
        match load {
            SectionLoad::InPlace { bytes } => *mapped += bytes,
            SectionLoad::Copied { bytes } => *copied += bytes,
        }
    }
    CsrGraph::from_storage(offsets, targets)
        .map_err(|e| artifact_err(format!("{what}: {e}")))
}

impl PreparedGraph<'_> {
    /// Persists this artifact to `path` as a `brics.artifact/v1` container.
    ///
    /// `source` is free-form provenance (typically the input graph path);
    /// it is stored verbatim and reported back by [`PreparedGraph::load`].
    /// Runs under a `prepare.save` telemetry span and charges the container
    /// size to the `artifact_bytes_written` counter.
    pub fn save<R: Recorder>(
        &self,
        path: &Path,
        source: &str,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<ArtifactInfo, CentralityError> {
        let rec = ctx.recorder();
        timed(rec, "prepare.save", || {
            let mut w = ArtifactWriter::new();
            w.section(SEC_ORIG_OFFSETS, usizes_bytes(self.original.offsets()));
            w.section(SEC_ORIG_TARGETS, u32s_bytes(self.original.targets()));
            w.section(SEC_RED_OFFSETS, usizes_bytes(self.red.graph.offsets()));
            w.section(SEC_RED_TARGETS, u32s_bytes(self.red.graph.targets()));
            if let Some(weights) = &self.red.weights {
                w.section(SEC_RED_WEIGHTS, u32s_bytes(weights));
            }
            w.section(SEC_RED_REMOVED, self.red.removed.iter().map(|&r| u8::from(r)).collect());
            w.section(SEC_RED_RECORDS, json_bytes(&self.red.records, "records")?);
            w.section(SEC_RED_STATS, json_bytes(&self.red.stats, "stats")?);
            w.section(SEC_SURVIVORS, u32s_bytes(&self.survivors));
            w.section(SEC_CONFIG, json_bytes(&self.config, "config")?);
            w.section(SEC_PLAN, json_bytes(&self.plan, "plan")?);
            if let Some(bcc) = &self.bcc {
                w.section(SEC_BCC, json_bytes(bcc, "bct state")?);
            }
            w.section(
                SEC_META,
                json_bytes(
                    &ArtifactMeta {
                        offset_total: self.offset_total,
                        prepare_elapsed: self.prepare_elapsed,
                        prepare_degradation: self.prepare_degradation.clone(),
                        num_nodes: self.original.num_nodes() as u64,
                    },
                    "meta",
                )?,
            );
            w.section(
                SEC_PROVENANCE,
                json_bytes(
                    &ProvenanceDoc { schema: SCHEMA.to_string(), source: source.to_string() },
                    "provenance",
                )?,
            );
            if let Some(r) = &self.relabel {
                w.section(SEC_RELABEL_OFFSETS, usizes_bytes(r.graph.offsets()));
                w.section(SEC_RELABEL_TARGETS, u32s_bytes(r.graph.targets()));
                w.section(SEC_RELABEL_NEW_OF_OLD, u32s_bytes(&r.new_of_old));
                w.section(SEC_RELABEL_OLD_OF_NEW, u32s_bytes(&r.old_of_new));
            }
            let bytes = w.write_to(path)?;
            if rec.enabled() {
                rec.add(Counter::ArtifactBytesWritten, bytes);
            }
            Ok(ArtifactInfo {
                version: FORMAT_VERSION,
                checksum: w.digest(),
                path: path.display().to_string(),
                source: source.to_string(),
                bytes,
            })
        })
    }
}

impl PreparedGraph<'static> {
    /// Loads an artifact written by [`PreparedGraph::save`], memory-mapping
    /// the file so CSR sections are served in place where possible.
    ///
    /// Runs under an `artifact.load` telemetry span — deliberately *not*
    /// under `prepare`, and with no nested `reduce` span: nothing is
    /// recomputed. Integrity violations (truncation, corruption, foreign
    /// format) surface as [`CentralityError::Artifact`].
    pub fn load<R: Recorder>(
        path: &Path,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<(Self, ArtifactInfo), CentralityError> {
        Self::load_with(path, true, ctx)
    }

    /// [`PreparedGraph::load`] with an explicit backend switch:
    /// `use_mmap = false` forces the read-into-heap fallback (every CSR
    /// section is copy-converted; useful for benchmarking the mapping).
    pub fn load_with<R: Recorder>(
        path: &Path,
        use_mmap: bool,
        ctx: &ExecutionContext<'_, R>,
    ) -> Result<(Self, ArtifactInfo), CentralityError> {
        let rec = ctx.recorder();
        timed(rec, "artifact.load", || {
            let reader = ArtifactReader::open(path, use_mmap, ctx.control())?;
            let prov: ProvenanceDoc =
                parse_json(required(&reader, SEC_PROVENANCE, "provenance")?, "provenance")?;
            if prov.schema != SCHEMA {
                return Err(artifact_err(format!(
                    "unknown payload schema {:?} (this build reads {SCHEMA:?})",
                    prov.schema
                )));
            }
            let meta: ArtifactMeta = parse_json(required(&reader, SEC_META, "meta")?, "meta")?;
            let config: PrepareConfig =
                parse_json(required(&reader, SEC_CONFIG, "config")?, "config")?;
            // The stored plan documents the saving host; admission must use
            // *this* context's thread plan, like a fresh prepare would.
            let _saved_plan: MemoryPlan = parse_json(required(&reader, SEC_PLAN, "plan")?, "plan")?;

            let mut mapped = 0u64;
            let mut copied = 0u64;
            let original = load_csr(
                &reader,
                SEC_ORIG_OFFSETS,
                SEC_ORIG_TARGETS,
                "original graph",
                &mut mapped,
                &mut copied,
            )?;
            let n = original.num_nodes();
            if meta.num_nodes != n as u64 {
                return Err(artifact_err(format!(
                    "meta says {} nodes but the original CSR holds {n}",
                    meta.num_nodes
                )));
            }
            let red_graph = load_csr(
                &reader,
                SEC_RED_OFFSETS,
                SEC_RED_TARGETS,
                "reduced graph",
                &mut mapped,
                &mut copied,
            )?;
            let weights = match reader.section_bytes(SEC_RED_WEIGHTS) {
                Some(b) => Some(parse_u32s(b, "weights")?),
                None => None,
            };
            let removed: Vec<bool> =
                required(&reader, SEC_RED_REMOVED, "removed mask")?.iter().map(|&b| b != 0).collect();
            if removed.len() != n {
                return Err(artifact_err(format!(
                    "removed mask covers {} vertices, graph has {n}",
                    removed.len()
                )));
            }
            let records: Vec<Removal> =
                parse_json(required(&reader, SEC_RED_RECORDS, "records")?, "records")?;
            let stats: ReductionStats =
                parse_json(required(&reader, SEC_RED_STATS, "stats")?, "stats")?;
            let survivors: Vec<NodeId> =
                parse_u32s(required(&reader, SEC_SURVIVORS, "survivors")?, "survivors")?;
            let bcc: Option<CumulativePrep> = match reader.section_bytes(SEC_BCC) {
                Some(b) => Some(parse_json(b, "bct state")?),
                None => None,
            };
            let relabel = if reader.has_section(SEC_RELABEL_OFFSETS) {
                let graph = load_csr(
                    &reader,
                    SEC_RELABEL_OFFSETS,
                    SEC_RELABEL_TARGETS,
                    "relabelled graph",
                    &mut mapped,
                    &mut copied,
                )?;
                let new_of_old = parse_u32s(
                    required(&reader, SEC_RELABEL_NEW_OF_OLD, "relabel permutation")?,
                    "relabel permutation",
                )?;
                let old_of_new = parse_u32s(
                    required(&reader, SEC_RELABEL_OLD_OF_NEW, "relabel permutation")?,
                    "relabel permutation",
                )?;
                Some(Relabeling { graph, new_of_old, old_of_new })
            } else {
                None
            };

            if rec.enabled() {
                rec.add(Counter::ArtifactBytesMapped, mapped);
                rec.add(Counter::ArtifactBytesCopied, copied);
            }
            let info = ArtifactInfo {
                version: FORMAT_VERSION,
                checksum: reader.digest(),
                path: path.display().to_string(),
                source: prov.source,
                bytes: reader.file().len() as u64,
            };
            let plan = MemoryPlan::compute(n, ctx.thread_count());
            Ok((
                PreparedGraph {
                    original: Cow::Owned(original),
                    relabel,
                    config,
                    red: ReductionResult { graph: red_graph, weights, removed, records, stats },
                    offset_total: meta.offset_total,
                    survivors,
                    plan,
                    bcc,
                    prepare_elapsed: meta.prepare_elapsed,
                    prepare_degradation: meta.prepare_degradation,
                },
                info,
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SampleSize;
    use brics_graph::generators::{social_like, ClassParams};
    use brics_graph::telemetry::RunRecorder;
    use brics_reduce::ReductionConfig;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("brics_prepared_{name}_{}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrips_state_and_answers() {
        let g = social_like(ClassParams::new(300, 7));
        let ctx = ExecutionContext::new();
        let p = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap();
        let path = tmp("roundtrip");
        let saved = p.save(&path, "social_like(300,7)", &ctx).unwrap();
        assert_eq!(saved.version, FORMAT_VERSION);
        assert!(saved.bytes > 0);

        let (q, loaded) = PreparedGraph::load(&path, &ctx).unwrap();
        assert_eq!(loaded.checksum, saved.checksum, "digest stable across save/load");
        assert_eq!(loaded.source, "social_like(300,7)");
        assert_eq!(q.original(), &g);
        assert_eq!(q.num_surviving(), p.num_surviving());
        assert_eq!(q.offset_total(), p.offset_total());
        assert_eq!(q.has_bcc(), p.has_bcc());
        assert_eq!(q.config(), p.config());

        let a = p.cumulative(SampleSize::Fraction(0.4), 9, &ctx).unwrap();
        let b = q.cumulative(SampleSize::Fraction(0.4), 9, &ctx).unwrap();
        assert_eq!(a.raw(), b.raw());
        assert_eq!(a.scaled(), b.scaled());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_charges_mapped_bytes_and_skips_reduce() {
        let g = social_like(ClassParams::new(200, 3));
        let build_ctx = ExecutionContext::new();
        let p = PreparedGraph::build(&g, &ReductionConfig::all(), &build_ctx).unwrap();
        let path = tmp("counters");
        p.save(&path, "test", &build_ctx).unwrap();

        let rec = RunRecorder::new();
        let ctx = ExecutionContext::new().with_recorder(&rec);
        let (q, _) = PreparedGraph::load(&path, &ctx).unwrap();
        q.reduced(SampleSize::Fraction(0.5), 1, &ctx).unwrap();
        let report = rec.report();
        assert!(report.phases.iter().any(|ph| ph.name == "artifact.load"));
        assert!(
            !report.phases.iter().any(|ph| ph.name == "reduce" || ph.name == "prepare"),
            "loading must not re-run the prepare pipeline"
        );
        let get = |name: &str| report.counters.get(name).copied().unwrap_or(0);
        if cfg!(all(unix, target_endian = "little", target_pointer_width = "64")) {
            assert!(get("artifact_bytes_mapped") > 0, "CSR sections served in place");
            assert_eq!(get("artifact_bytes_copied"), 0, "no CSR bytes deserialized");
        } else {
            assert!(get("artifact_bytes_copied") > 0);
        }

        // The forced-heap backend takes the copy path for every section.
        let rec2 = RunRecorder::new();
        let ctx2 = ExecutionContext::new().with_recorder(&rec2);
        let (q2, _) = PreparedGraph::load_with(&path, false, &ctx2).unwrap();
        let report2 = rec2.report();
        let get2 = |name: &str| report2.counters.get(name).copied().unwrap_or(0);
        assert_eq!(get2("artifact_bytes_mapped"), 0);
        assert!(get2("artifact_bytes_copied") > 0);
        let a = q.reduced(SampleSize::Fraction(0.5), 2, &ctx).unwrap();
        let b = q2.reduced(SampleSize::Fraction(0.5), 2, &ctx2).unwrap();
        assert_eq!(a.raw(), b.raw(), "both backends answer identically");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_schema_and_missing_sections_are_typed_errors() {
        let path = tmp("foreign");
        // A structurally valid container whose payload is not ours.
        let mut w = ArtifactWriter::new();
        w.section(SEC_PROVENANCE, b"{\"schema\":\"someone.else/v9\",\"source\":\"x\"}".to_vec());
        w.write_to(&path).unwrap();
        let ctx = ExecutionContext::new();
        let err = PreparedGraph::load(&path, &ctx).unwrap_err();
        assert!(matches!(err, CentralityError::Artifact { .. }), "{err}");
        assert!(err.to_string().contains("schema"), "{err}");

        let mut w = ArtifactWriter::new();
        w.section(
            SEC_PROVENANCE,
            format!("{{\"schema\":\"{SCHEMA}\",\"source\":\"x\"}}").into_bytes(),
        );
        w.write_to(&path).unwrap();
        let err = PreparedGraph::load(&path, &ctx).unwrap_err();
        assert!(err.to_string().contains("missing required section"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }
}
