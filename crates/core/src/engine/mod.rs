//! The two-stage estimation engine: **prepare once, query many**.
//!
//! Cohen et al. and Chechik–Cohen–Kaplan both frame centrality estimation
//! as a preprocessing problem: the expensive, query-independent structure
//! work (reduction rounds, biconnectivity, Block-Cut-Tree construction,
//! reordering) is done once, and each query only pays for its sampled
//! sweep. This module is that split made explicit:
//!
//! * [`PreparedGraph::build`] runs the structure stage and returns an
//!   artifact owning the reduction result, removal records, structural
//!   offsets, the BCT with homed records and per-block contexts, an
//!   optional degree-reorder permutation and precomputed memory-budget
//!   figures ([`MemoryPlan`]);
//! * the artifact's query methods ([`PreparedGraph::exact`],
//!   [`PreparedGraph::sample`], [`PreparedGraph::reduced`],
//!   [`PreparedGraph::cumulative`], [`PreparedGraph::topk`],
//!   [`PreparedGraph::harmonic`], [`PreparedGraph::betweenness`]) run
//!   against it with only `(SampleSize, seed)` varying — no re-reduction,
//!   no re-decomposition.
//!
//! [`ExecutionContext`] bundles the per-call environment (limits, kernel,
//! recorder, thread planning) into the one generic signature every
//! estimator now exposes.
//!
//! Telemetry: the build stage runs under a `prepare` phase span (with the
//! single `reduce` span nested inside it) and each query under an
//! `estimate` span, so prepare-vs-execute time is separately visible in a
//! [`RunReport`](brics_graph::telemetry::RunReport).

pub mod artifact;
mod context;
mod prepared;

pub use artifact::ArtifactInfo;
pub use context::ExecutionContext;
pub use prepared::{MemoryPlan, PrepareConfig, PreparedGraph};

use crate::FarnessEstimate;
use brics_graph::RunOutcome;
use std::time::Instant;

/// The trivial partial estimate an interrupted pipeline degrades to: zero
/// raw mass, zero coverage, no sources. Sound on a connected graph — every
/// lower bound becomes `n − 1`.
pub(crate) fn zero_coverage_estimate(
    n: usize,
    start: Instant,
    outcome: RunOutcome,
) -> FarnessEstimate {
    FarnessEstimate::new(
        vec![0; n],
        vec![0.0; n],
        vec![false; n],
        vec![0; n],
        0,
        start.elapsed(),
        outcome,
    )
}

/// Shared final assembly of the flat (non-BCT) estimators: marks completed
/// sources sampled, overwrites their accumulator slot with the exact own
/// sum, expands everyone else by `(n − 1) / k_done`, de-biases by the
/// structural-offset mass (zero when nothing was reduced) and counts
/// coverage. `sampling.rs` and `reduced.rs` previously each carried a copy
/// of this block.
pub(crate) fn assemble_flat(
    n: usize,
    mut acc: Vec<u64>,
    sources: &[brics_graph::NodeId],
    per_source: &[Option<(usize, u64)>],
    offset_total: u64,
    start: Instant,
    outcome: RunOutcome,
) -> FarnessEstimate {
    let mut sampled = vec![false; n];
    for (&s, per) in sources.iter().zip(per_source) {
        if let Some((_, sum)) = *per {
            sampled[s as usize] = true;
            // Exact farness for sources (overwrites the partial accumulation).
            acc[s as usize] = sum;
        }
    }
    let k_done = per_source.iter().flatten().count();
    let factor = if k_done > 0 { (n as f64 - 1.0) / k_done as f64 } else { 1.0 };
    let scaled: Vec<f64> = acc
        .iter()
        .zip(&sampled)
        .map(|(&v, &is_src)| {
            if is_src {
                v as f64
            } else if k_done > 0 {
                v as f64 * factor + offset_total as f64
            } else {
                v as f64
            }
        })
        .collect();
    let coverage: Vec<u32> = sampled
        .iter()
        .map(|&s| if s { (n - 1) as u32 } else { k_done as u32 })
        .collect();
    FarnessEstimate::new(acc, scaled, sampled, coverage, k_done, start.elapsed(), outcome)
}
