//! The per-call execution environment shared by every estimator.

use brics_graph::telemetry::{NullRecorder, Recorder};
use brics_graph::traversal::KernelConfig;
use brics_graph::RunControl;

static NULL_RECORDER: NullRecorder = NullRecorder;

/// Everything an estimation call needs besides the graph and the query
/// parameters: execution limits, the BFS kernel choice, thread planning and
/// an optional telemetry recorder.
///
/// This replaces the former `_ctl` / `_ctl_with` / `_ctl_rec` variant ladder:
/// each estimator now has exactly one generic `*_in` entry point taking an
/// `&ExecutionContext`, plus a thin one-shot convenience wrapper that uses
/// [`ExecutionContext::new`].
///
/// The recorder is held by reference with static dispatch (`&dyn`-free); the
/// default is a [`NullRecorder`], which compiles the telemetry away.
///
/// ```
/// use brics::{ExecutionContext, RunControl, RunRecorder};
/// use std::time::Duration;
///
/// let rec = RunRecorder::new();
/// let ctx = ExecutionContext::new()
///     .with_control(RunControl::new().with_timeout(Duration::from_secs(30)))
///     .with_recorder(&rec);
/// assert!(ctx.thread_count() >= 1);
/// ```
pub struct ExecutionContext<'r, R: Recorder = NullRecorder> {
    control: RunControl,
    kernel: KernelConfig,
    threads: Option<usize>,
    degradation: Option<crate::degrade::DegradationPolicy>,
    recorder: &'r R,
}

impl Default for ExecutionContext<'static, NullRecorder> {
    fn default() -> Self {
        Self {
            control: RunControl::new(),
            kernel: KernelConfig::default(),
            threads: None,
            degradation: None,
            recorder: &NULL_RECORDER,
        }
    }
}

impl ExecutionContext<'static, NullRecorder> {
    /// An unbounded, unrecorded context with the default kernel — the
    /// environment the one-shot convenience wrappers run under.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<'r, R: Recorder> ExecutionContext<'r, R> {
    /// Sets the execution limits (deadline, cancellation, memory budget).
    pub fn with_control(mut self, control: RunControl) -> Self {
        self.control = control;
        self
    }

    /// Sets the BFS kernel choice and its direction-switching tunables.
    /// Purely a performance knob: every kernel computes identical distances.
    pub fn with_kernel(mut self, kernel: KernelConfig) -> Self {
        self.kernel = kernel;
        self
    }

    /// Pins the worker-thread count used for *memory planning* (admission
    /// figures scale with the number of per-thread BFS scratch buffers).
    /// Actual parallelism always uses the ambient rayon pool; configure that
    /// pool itself to change it. Defaults to the ambient pool's size.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Arms graceful degradation: when the run trips mid-query (deadline,
    /// memory denial, worker panics), estimators running through
    /// [`crate::degrade::run_degraded`] walk the quality ladder under this
    /// policy instead of failing.
    pub fn with_degradation(mut self, policy: crate::degrade::DegradationPolicy) -> Self {
        self.degradation = Some(policy);
        self
    }

    /// Attaches a telemetry recorder, swapping the recorder type parameter.
    /// The recorder only observes: results are bit-identical with and
    /// without one.
    pub fn with_recorder<'r2, R2: Recorder>(self, recorder: &'r2 R2) -> ExecutionContext<'r2, R2> {
        ExecutionContext {
            control: self.control,
            kernel: self.kernel,
            threads: self.threads,
            degradation: self.degradation,
            recorder,
        }
    }

    /// The execution limits.
    pub fn control(&self) -> &RunControl {
        &self.control
    }

    /// The BFS kernel configuration.
    pub fn kernel(&self) -> &KernelConfig {
        &self.kernel
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &'r R {
        self.recorder
    }

    /// The degradation policy, if armed via [`Self::with_degradation`].
    pub fn degradation(&self) -> Option<&crate::degrade::DegradationPolicy> {
        self.degradation.as_ref()
    }

    /// The thread count used for memory planning: the pinned value if
    /// [`Self::with_threads`] was called, the ambient rayon pool size
    /// otherwise.
    pub fn thread_count(&self) -> usize {
        self.threads.unwrap_or_else(rayon::current_num_threads).max(1)
    }
}

impl<R: Recorder> Clone for ExecutionContext<'_, R> {
    fn clone(&self) -> Self {
        Self {
            control: self.control.clone(),
            kernel: self.kernel,
            threads: self.threads,
            degradation: self.degradation,
            recorder: self.recorder,
        }
    }
}

impl<R: Recorder> std::fmt::Debug for ExecutionContext<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionContext")
            .field("kernel", &self.kernel)
            .field("threads", &self.threads)
            .field("degradation", &self.degradation)
            .field("recorder_enabled", &self.recorder.enabled())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::telemetry::RunRecorder;
    use brics_graph::traversal::Kernel;

    #[test]
    fn builder_round_trip() {
        let rec = RunRecorder::new();
        let ctx = ExecutionContext::new()
            .with_kernel(KernelConfig::new(Kernel::TopDown))
            .with_threads(3)
            .with_recorder(&rec);
        assert_eq!(ctx.kernel().kernel, Kernel::TopDown);
        assert_eq!(ctx.thread_count(), 3);
        assert!(ctx.recorder().enabled());
        assert!(ctx.control().should_stop().is_none());
    }

    #[test]
    fn default_thread_count_is_ambient_pool() {
        let ctx = ExecutionContext::new();
        assert_eq!(ctx.thread_count(), rayon::current_num_threads().max(1));
        assert!(!ctx.recorder().enabled());
    }
}
