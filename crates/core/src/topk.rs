//! Exact top-k closeness via BRICS lower bounds and BFS-cut verification.
//!
//! Ranking the k most central vertices is the application the paper cites
//! through Okamoto et al. (§I, §I-A). BRICS makes an *exact* top-k
//! algorithm cheap: raw estimates are partial distance sums, hence sound
//! **lower bounds** on true farness — and the Cumulative method's bounds
//! are tight because the whole inter-block mass is exact.
//!
//! The algorithm scans vertices in ascending estimated farness, verifying
//! each with one true BFS, and stops as soon as the next lower bound is no
//! better than the current k-th verified farness — everything unscanned is
//! provably outside the top-k. Vertices that served as BFS sources during
//! estimation are already exact and verify for free.
//!
//! Verification BFS are additionally *cut* (Borassi et al. / Bergamini
//! et al.): [`BfsCut`] aborts a sweep the moment its per-level farness
//! lower bound exceeds the running k-th best, so losing candidates pay a
//! few levels instead of a whole traversal. Because the bound never
//! overstates the true farness and ties are always verified to completion,
//! the pruned scan is **bit-identical** to full verification — the
//! `prune = false` fallback exists purely for equivalence testing and A/B
//! measurement.

use crate::engine::ExecutionContext;
use crate::{BricsEstimator, CentralityError, FarnessEstimate};
use brics_graph::telemetry::{record_panic, timed, Counter, Metric, NullRecorder, Recorder};
use brics_graph::traversal::{BfsCut, CutOutcome, WorkerGuard};
use brics_graph::{CsrGraph, NodeId, RunControl, INFINITE_DIST};
use brics_reduce::{reconstruct_distances, Removal};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Result of an exact top-k closeness query.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopK {
    /// The k most central vertices with their *exact* farness, ascending
    /// (ties broken by vertex id).
    pub ranked: Vec<(NodeId, u64)>,
    /// Vertices whose exact farness was verified by a *completed* BFS.
    pub verified_with_bfs: usize,
    /// Vertices accepted for free (they were estimation BFS sources).
    pub verified_for_free: usize,
    /// Vertices pruned by the lower bound without any BFS.
    pub pruned: usize,
    /// Vertices whose verification BFS was cut early by the BFS-cut bound
    /// (they started a sweep but were certified out before it finished).
    pub pruned_bfs: usize,
}

/// Verification context for scans running on a *reduced* graph: survivor
/// candidates traverse the (smaller) reduced graph and replay the removal
/// log to recover the removed vertices' exact distance mass, instead of
/// sweeping the full working graph.
pub(crate) struct ReducedVerify<'a> {
    /// The reduced graph, in the same id space as the working graph
    /// (removed vertices are isolated).
    pub graph: &'a CsrGraph,
    /// Per-vertex removal flags.
    pub removed: &'a [bool],
    /// The removal log, replayed to reconstruct removed distances after a
    /// completed sweep.
    pub records: &'a [Removal],
    /// Survivor count — the population a connected reduced sweep reaches.
    pub num_surviving: usize,
    /// Sound lower bound on the total farness mass the removed vertices
    /// contribute from *any* survivor source (Σ max(structural offset, 1)).
    /// Added to the cut bound so pruning on the reduced graph stays sound.
    pub removed_floor: u64,
}

/// Computes the exact top-k closeness ranking (smallest farness) using a
/// BRICS estimate for pruning.
///
/// `estimator` controls the estimation pass (method, rate, seed); higher
/// sampling rates tighten the bounds and prune more, at higher estimation
/// cost. `k` is clamped to the vertex count.
pub fn top_k_closeness(
    g: &CsrGraph,
    k: usize,
    estimator: &BricsEstimator,
) -> Result<TopK, CentralityError> {
    top_k_closeness_in(g, k, estimator, &ExecutionContext::new())
}

/// [`top_k_closeness`] under an [`ExecutionContext`] (limits, kernel,
/// telemetry — the estimation pass records its usual phases, the
/// verification scan adds a `topk.verify` span and charges each
/// verification BFS to the kernel counters; observe-only either way).
///
/// A top-k ranking is a *certificate* — either every returned vertex is
/// provably in the top-k or the result is worthless — so unlike the
/// estimators this function cannot return a partial answer: interruption
/// during the estimation pass or the verification scan surfaces as
/// [`CentralityError::Interrupted`]. A partial estimate whose deadline has
/// not yet expired is still usable (weaker bounds just mean more BFS
/// verification).
pub fn top_k_closeness_in<R: Recorder>(
    g: &CsrGraph,
    k: usize,
    estimator: &BricsEstimator,
    ctx: &ExecutionContext<'_, R>,
) -> Result<TopK, CentralityError> {
    let rec = ctx.recorder();
    let est = estimator.run_in(g, ctx)?;
    timed(rec, "topk.verify", || top_k_scan(g, k, &est, true, None, ctx.control(), rec))
}

/// Same as [`top_k_closeness`], reusing an existing estimate.
pub fn top_k_from_estimate(g: &CsrGraph, k: usize, est: &FarnessEstimate) -> TopK {
    top_k_from_estimate_ctl(g, k, est, &RunControl::new())
        .expect("unbounded control cannot be interrupted")
}

/// [`top_k_from_estimate`] under an [`ExecutionContext`]: the context's
/// control is consulted before each verification BFS and between the cut
/// levels inside one, and the recorder receives per-BFS telemetry
/// (`topk.cutbfs` spans, kernel counters, cut-depth observations).
pub fn top_k_from_estimate_in<R: Recorder>(
    g: &CsrGraph,
    k: usize,
    est: &FarnessEstimate,
    ctx: &ExecutionContext<'_, R>,
) -> Result<TopK, CentralityError> {
    top_k_from_estimate_with(g, k, est, true, ctx)
}

/// [`top_k_from_estimate_in`] with an explicit pruning switch.
///
/// `prune = true` cuts each verification BFS against the running k-th best
/// farness ([`BfsCut`]); `prune = false` runs every verification sweep to
/// completion (the exact-BFS fallback). Both settings produce the same
/// `ranked` vector bit for bit — the flag exists for equivalence testing
/// and for measuring what the cut saves. Pruning assumes a connected
/// graph (the estimators already require one); if a completed sweep
/// reveals a disconnected input, the scan falls back to full verification
/// for the remaining candidates.
pub fn top_k_from_estimate_with<R: Recorder>(
    g: &CsrGraph,
    k: usize,
    est: &FarnessEstimate,
    prune: bool,
    ctx: &ExecutionContext<'_, R>,
) -> Result<TopK, CentralityError> {
    top_k_scan(g, k, est, prune, None, ctx.control(), ctx.recorder())
}

/// Control-level core of the verification scan, kept for callers that have
/// a bare [`RunControl`] rather than a full context. Pruning on, no
/// telemetry.
pub(crate) fn top_k_from_estimate_ctl(
    g: &CsrGraph,
    k: usize,
    est: &FarnessEstimate,
    ctl: &RunControl,
) -> Result<TopK, CentralityError> {
    top_k_scan(g, k, est, true, None, ctl, &NullRecorder)
}

/// The verification scan shared by every entry point, including
/// [`crate::engine::PreparedGraph::topk`] (which must verify in
/// working-graph ids before translating, and passes a [`ReducedVerify`]
/// so survivor candidates sweep the reduced graph).
///
/// Accounting (the three fixed bugs live here):
/// * each verification BFS charges its *actual* visited vertices and
///   scanned arcs to the kernel counters — not `num_nodes`/`num_arcs`;
/// * [`Counter::BfsSources`] moves once per BFS *inside* the loop, after
///   an up-front [`Counter::BfsSourcesPlanned`] estimate, so a progress
///   heartbeat sees the verify phase advance instead of one terminal jump;
/// * cut sweeps record [`Counter::TopkPrunedBfs`],
///   [`Counter::TopkCutLevels`] and a [`Metric::CutDepth`] observation.
pub(crate) fn top_k_scan<R: Recorder>(
    g: &CsrGraph,
    k: usize,
    est: &FarnessEstimate,
    prune: bool,
    reduced: Option<&ReducedVerify<'_>>,
    ctl: &RunControl,
    rec: &R,
) -> Result<TopK, CentralityError> {
    let n = g.num_nodes();
    let k = k.min(n);
    if k == 0 {
        return Ok(TopK {
            ranked: Vec::new(),
            verified_with_bfs: 0,
            verified_for_free: 0,
            pruned: n,
            pruned_bfs: 0,
        });
    }
    // Ascending lower-bound order. On top of the estimate's built-in
    // bound (uncovered vertices are ≥ 1 hop away), at most deg(v) of the
    // uncovered vertices can be neighbours — every other one is ≥ 2 hops
    // away, which tightens the bound by another (uncovered − deg(v))⁺.
    // Degrees are the *working* graph's: on a reduced graph a candidate's
    // uncovered set includes removed vertices its full neighbourhood can
    // still reach in one hop.
    let bounds: Vec<u64> = est
        .lower_bounds()
        .into_iter()
        .zip(est.coverage())
        .enumerate()
        .map(|(v, (lb, &cov))| {
            let uncovered = (n as u64 - 1).saturating_sub(cov as u64);
            lb + uncovered.saturating_sub(g.degree(v as NodeId) as u64)
        })
        .collect();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&v| (bounds[v as usize], v));

    if rec.enabled() {
        // A-priori estimate of how many verification BFS the scan will
        // run, published before the first one so a progress heartbeat can
        // show an ETA. The k-th smallest farness among the (already
        // exact) sampled vertices over-approximates the final threshold
        // most of the time; with fewer than k samples every non-sampled
        // vertex might need a sweep.
        let mut sampled: Vec<u64> = order
            .iter()
            .filter(|&&v| est.is_sampled(v))
            .map(|&v| est.raw()[v as usize])
            .collect();
        let planned = if sampled.len() >= k {
            sampled.sort_unstable();
            let tau0 = sampled[k - 1];
            order
                .iter()
                .filter(|&&v| !est.is_sampled(v) && bounds[v as usize] <= tau0)
                .count()
        } else {
            order.iter().filter(|&&v| !est.is_sampled(v)).count()
        };
        rec.add(Counter::BfsSourcesPlanned, planned as u64);
    }

    let mut cut = BfsCut::new(n);
    let guard = WorkerGuard::new(ctl);
    // (farness, vertex) of verified candidates; k is small, a sorted Vec
    // beats a heap here.
    let mut best: Vec<(u64, NodeId)> = Vec::with_capacity(k + 1);
    let mut verified_with_bfs = 0usize;
    let mut verified_for_free = 0usize;
    let mut pruned_bfs = 0usize;
    let mut scanned = 0usize;
    let mut allow_prune = prune;

    for &v in &order {
        let bound = bounds[v as usize];
        if best.len() == k {
            let (tau, _) = *best.last().unwrap();
            // Strictly worse bounds can never enter the top-k; ties at tau
            // are still scanned so id tie-breaking matches the exact order.
            if bound > tau {
                break;
            }
        }
        scanned += 1;
        if est.is_sampled(v) {
            verified_for_free += 1;
            best.push((est.raw()[v as usize], v));
            best.sort_unstable();
            best.truncate(k);
            continue;
        }

        // The cut threshold: only once k candidates are verified is there
        // a k-th best to beat, and ties at tau must verify to completion
        // (strict `>` inside the sweep) so the id tie-break is exact.
        let tau_cut = match (allow_prune, best.len() == k) {
            (true, true) => best.last().unwrap().0,
            _ => u64::MAX,
        };
        // Survivors sweep the reduced graph with the removed-vertex floor
        // folded into the bound; removed candidates (isolated there) and
        // the plain entry points sweep the working graph.
        let (target, population, extra_mass) = match reduced {
            Some(rv) if !rv.removed[v as usize] => {
                (rv.graph, rv.num_surviving, rv.removed_floor)
            }
            _ => (g, n, 0u64),
        };

        let started = if rec.enabled() { Some(Instant::now()) } else { None };
        // The `bfs.source` failpoint + panic isolation wrap each sweep,
        // like the estimation drivers: a worker panic (or injected
        // io-error) surfaces as an internal error, never a wrong ranking.
        let out = guard.run_source(v, || {
            let res = cut.run_ctl(target, v, tau_cut, population, extra_mass, ctl)?;
            if let (CutOutcome::Exact { reached, sum }, Some(rv)) = (res, reduced) {
                if !rv.removed[v as usize] && !rv.records.is_empty() {
                    // Replay the removal log over the completed distance
                    // array to add the removed vertices' exact mass, then
                    // restore the sparse-reset invariant.
                    let mut sum = sum;
                    let dist = cut.distances_mut();
                    reconstruct_distances(rv.records, dist);
                    for rem in rv.records {
                        for x in rem.removed_nodes() {
                            let d = dist[x as usize];
                            debug_assert_ne!(d, INFINITE_DIST, "unreachable removed vertex {x}");
                            sum += d as u64;
                            dist[x as usize] = INFINITE_DIST;
                        }
                    }
                    return Ok(CutOutcome::Exact { reached, sum });
                }
            }
            Ok(res)
        });
        let res = match out {
            Some(r) => r,
            None => {
                // Either the control tripped before the sweep or the
                // worker panicked inside it; `finish` disambiguates.
                return match guard.finish() {
                    Err(p) => {
                        record_panic(rec, &p.detail);
                        Err(CentralityError::Internal { detail: p.detail })
                    }
                    Ok(outcome) => Err(CentralityError::Interrupted { outcome }),
                };
            }
        };
        if let Some(start) = started {
            let end = Instant::now();
            rec.incr(Counter::BfsSources);
            rec.add(Counter::VerticesVisited, cut.vertices_visited());
            rec.add(Counter::EdgesScanned, cut.arcs_scanned());
            rec.span("topk.cutbfs", end.duration_since(start));
            rec.observe(Metric::SourceBfsNanos, end.duration_since(start).as_nanos() as u64);
            if rec.trace_enabled() {
                rec.trace_span("bfs.source", start, end);
            }
        }
        let exact = match res {
            Ok(CutOutcome::Exact { reached, sum }) => {
                if reached < population {
                    // Disconnected input: the cut bound's unvisited count
                    // is unsound here, so verify the rest in full.
                    allow_prune = false;
                }
                verified_with_bfs += 1;
                sum
            }
            Ok(CutOutcome::Pruned { levels, .. }) => {
                pruned_bfs += 1;
                if rec.enabled() {
                    rec.incr(Counter::TopkPrunedBfs);
                    rec.add(Counter::TopkCutLevels, levels as u64);
                    rec.observe(Metric::CutDepth, levels as u64);
                }
                continue;
            }
            Err(outcome) => return Err(CentralityError::Interrupted { outcome }),
        };
        best.push((exact, v));
        best.sort_unstable();
        best.truncate(k);
    }

    Ok(TopK {
        ranked: best.into_iter().map(|(f, v)| (v, f)).collect(),
        verified_with_bfs,
        verified_for_free,
        pruned: n - scanned,
        pruned_bfs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_farness, Method, SampleSize};
    use brics_graph::generators::{
        community_like, complete_graph, cycle_graph, gnm_random_connected, lollipop, social_like,
        star_graph, ClassParams,
    };
    use brics_graph::telemetry::RunRecorder;

    fn brute_top_k(g: &CsrGraph, k: usize) -> Vec<(NodeId, u64)> {
        let exact = exact_farness(g).unwrap();
        let mut idx: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        idx.sort_by_key(|&v| (exact[v as usize], v));
        idx.truncate(k);
        idx.into_iter().map(|v| (v, exact[v as usize])).collect()
    }

    fn estimator() -> BricsEstimator {
        BricsEstimator::new(Method::Cumulative).sample(SampleSize::Fraction(0.3)).seed(7)
    }

    /// Runs the scan pruned and full against the same estimate and pins
    /// them bit-identical before returning the pruned result.
    fn both_modes(g: &CsrGraph, k: usize, est: &FarnessEstimate) -> TopK {
        let ctx = ExecutionContext::new();
        let pruned = top_k_from_estimate_with(g, k, est, true, &ctx).unwrap();
        let full = top_k_from_estimate_with(g, k, est, false, &ctx).unwrap();
        assert_eq!(pruned.ranked, full.ranked, "pruned vs full verification diverged");
        assert_eq!(pruned.pruned, full.pruned, "bound-pruned counts must agree");
        assert_eq!(pruned.verified_for_free, full.verified_for_free);
        assert_eq!(full.pruned_bfs, 0, "full mode never cuts");
        assert_eq!(
            pruned.verified_with_bfs + pruned.pruned_bfs,
            full.verified_with_bfs,
            "every full-mode sweep is either completed or cut in pruned mode"
        );
        pruned
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..8 {
            let g = gnm_random_connected(80, 120, seed);
            let t = top_k_closeness(&g, 5, &estimator()).unwrap();
            assert_eq!(t.ranked, brute_top_k(&g, 5), "seed {seed}");
        }
    }

    #[test]
    fn matches_brute_force_on_class_graphs() {
        for g in [social_like(ClassParams::new(500, 3)), community_like(ClassParams::new(500, 4))]
        {
            let t = top_k_closeness(&g, 10, &estimator()).unwrap();
            assert_eq!(t.ranked, brute_top_k(&g, 10));
            assert_eq!(
                t.pruned + t.pruned_bfs + t.verified_for_free + t.verified_with_bfs,
                g.num_nodes()
            );
        }
    }

    #[test]
    fn pruning_actually_prunes_and_improves_with_rate() {
        let g = social_like(ClassParams::new(800, 5));
        let prune_at = |rate: f64| {
            let e = BricsEstimator::new(Method::Cumulative)
                .sample(SampleSize::Fraction(rate))
                .seed(7);
            let t = top_k_closeness(&g, 5, &e).unwrap();
            assert_eq!(t.ranked, brute_top_k(&g, 5), "rate {rate}");
            t.pruned
        };
        let p_low = prune_at(0.2);
        let p_high = prune_at(0.8);
        assert!(p_low > 0, "bounds should prune something even at 20%");
        assert!(
            p_high > p_low && p_high > g.num_nodes() / 2,
            "pruning should strengthen with rate: {p_low} -> {p_high} of {}",
            g.num_nodes()
        );
    }

    #[test]
    fn k_clamped_and_complete() {
        let g = lollipop(5, 3);
        let t = top_k_closeness(&g, 100, &estimator()).unwrap();
        assert_eq!(t.ranked.len(), 8);
        assert_eq!(t.ranked, brute_top_k(&g, 8));
        // Ascending farness order with id tiebreaks.
        assert!(t.ranked.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn k_zero() {
        let g = lollipop(4, 2);
        let t = top_k_closeness(&g, 0, &estimator()).unwrap();
        assert!(t.ranked.is_empty());
        assert_eq!(t.pruned, g.num_nodes());
    }

    #[test]
    fn reuses_existing_estimate() {
        let g = gnm_random_connected(60, 90, 1);
        let est = estimator().run(&g).unwrap();
        let a = top_k_from_estimate(&g, 4, &est);
        let b = top_k_from_estimate(&g, 4, &est);
        assert_eq!(a.ranked, b.ranked);
        assert_eq!(a.ranked, brute_top_k(&g, 4));
    }

    #[test]
    fn ctl_interruption_is_an_error_not_a_wrong_ranking() {
        let g = gnm_random_connected(80, 120, 4);
        // Expired deadline: the estimation pass yields a (sound but empty)
        // partial estimate, and the verification scan must refuse to certify.
        let ctx = ExecutionContext::new()
            .with_control(crate::RunControl::new().with_timeout(std::time::Duration::ZERO));
        let err = top_k_closeness_in(&g, 5, &estimator(), &ctx).unwrap_err();
        assert!(matches!(
            err,
            CentralityError::Interrupted { outcome: brics_graph::RunOutcome::Deadline }
        ));

        // Cancellation mid-scan via an existing estimate.
        let est = estimator().run(&g).unwrap();
        let ctl = crate::RunControl::new();
        ctl.cancel_token().cancel();
        let ctx = ExecutionContext::new().with_control(ctl);
        let err = top_k_from_estimate_in(&g, 5, &est, &ctx).unwrap_err();
        assert!(matches!(
            err,
            CentralityError::Interrupted { outcome: brics_graph::RunOutcome::Cancelled }
        ));

        // An unexpired control certifies normally.
        let ctx = ExecutionContext::new()
            .with_control(crate::RunControl::new().with_timeout(std::time::Duration::from_secs(600)));
        let t = top_k_closeness_in(&g, 5, &estimator(), &ctx).unwrap();
        assert_eq!(t.ranked, brute_top_k(&g, 5));
    }

    #[test]
    fn full_rate_estimate_verifies_mostly_for_free() {
        let g = gnm_random_connected(70, 100, 2);
        let est = BricsEstimator::new(Method::RandomSampling)
            .sample(SampleSize::Fraction(1.0))
            .seed(0)
            .run(&g)
            .unwrap();
        let t = top_k_from_estimate(&g, 5, &est);
        assert_eq!(t.verified_with_bfs, 0);
        assert_eq!(t.ranked, brute_top_k(&g, 5));
    }

    // ---- BFS-cut adversarial cases (pruned ≡ full ≡ brute force) ----

    fn weak_estimate(g: &CsrGraph, seed: u64) -> FarnessEstimate {
        // A low-rate random sample keeps the bounds loose so verification
        // genuinely runs (and cuts) BFS instead of accepting everything
        // for free.
        BricsEstimator::new(Method::RandomSampling)
            .sample(SampleSize::Fraction(0.1))
            .seed(seed)
            .run(g)
            .unwrap()
    }

    #[test]
    fn adversarial_star_and_lollipop_change_kth_mid_scan() {
        // Star: one vertex with tiny farness, the rest all tied — tau
        // collapses the moment the centre verifies. Lollipop: the clique
        // side fills the top-k, then the tail candidates must all cut.
        for (g, k) in [
            (star_graph(120), 3),
            (star_graph(120), 119),
            (lollipop(30, 40), 5),
            (lollipop(10, 60), 8),
        ] {
            for seed in [0u64, 1, 2] {
                let est = weak_estimate(&g, seed);
                let t = both_modes(&g, k, &est);
                assert_eq!(t.ranked, brute_top_k(&g, k), "k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn adversarial_k_equals_n() {
        // k = n: nothing can be bound-pruned or cut — the full ranking
        // must come back exact in both modes.
        let g = lollipop(12, 12);
        let n = g.num_nodes();
        let est = weak_estimate(&g, 3);
        let t = both_modes(&g, n, &est);
        assert_eq!(t.ranked, brute_top_k(&g, n));
        assert_eq!(t.pruned, 0);
        assert_eq!(t.pruned_bfs, 0, "k = n leaves no threshold to cut against");
    }

    #[test]
    fn adversarial_ties_exactly_at_tau() {
        // Cycle and complete graphs: every vertex has the same farness, so
        // every scanned candidate ties at tau exactly. Ties must verify to
        // completion (never cut) and the ranking is the first k ids.
        for g in [cycle_graph(64), complete_graph(40)] {
            for k in [1usize, 5, 16] {
                let est = weak_estimate(&g, 7);
                let t = both_modes(&g, k, &est);
                assert_eq!(t.ranked, brute_top_k(&g, k));
                assert_eq!(t.pruned_bfs, 0, "a tie at tau must never be cut");
            }
        }
    }

    #[test]
    fn adversarial_interruption_between_cut_levels() {
        // A cancellation fired mid-scan (between cut levels) must surface
        // as Interrupted, never as a wrong certificate.
        let g = lollipop(30, 40);
        let est = weak_estimate(&g, 1);
        let ctl = crate::RunControl::new();
        ctl.cancel_token().cancel();
        let ctx = ExecutionContext::new().with_control(ctl);
        let err = top_k_from_estimate_with(&g, 5, &est, true, &ctx).unwrap_err();
        assert!(matches!(
            err,
            CentralityError::Interrupted { outcome: brics_graph::RunOutcome::Cancelled }
        ));
    }

    #[test]
    fn pruned_and_full_agree_across_methods_and_seeds() {
        for seed in 0..4 {
            let g = gnm_random_connected(120, 240, seed);
            for method in [Method::RandomSampling, Method::ICR, Method::Cumulative] {
                let est = BricsEstimator::new(method)
                    .sample(SampleSize::Fraction(0.15))
                    .seed(seed)
                    .run(&g)
                    .unwrap();
                let t = both_modes(&g, 6, &est);
                assert_eq!(t.ranked, brute_top_k(&g, 6), "{method:?} seed {seed}");
            }
        }
    }

    #[test]
    fn cut_actually_fires_on_class_graphs() {
        let g = social_like(ClassParams::new(400, 4));
        let est = weak_estimate(&g, 5);
        let t = both_modes(&g, 8, &est);
        assert_eq!(t.ranked, brute_top_k(&g, 8));
        assert!(t.pruned_bfs > 0, "the BFS cut should fire on a social-like graph");
    }

    // ---- accounting regression tests (the three fixed bugs) ----

    #[test]
    fn full_verification_charges_actual_scan_counts() {
        // Regression for the `b * num_nodes` / `b * num_arcs` over-charge:
        // the counters must equal what the verification traversals really
        // did. Recompute the scan's candidate order and replay each
        // BFS-verified sweep standalone to get the ground truth (bottom-up
        // levels probe fewer arcs than `num_arcs`, so the old formula
        // disagrees with this the moment the direction heuristic fires).
        let g = gnm_random_connected(90, 200, 11);
        let n = g.num_nodes();
        let est = weak_estimate(&g, 11);
        let rec = RunRecorder::new();
        let ctx = ExecutionContext::new().with_recorder(&rec);
        let full = top_k_from_estimate_with(&g, 6, &est, false, &ctx).unwrap();
        let b = full.verified_with_bfs as u64;
        assert!(b > 0, "test needs real verification BFS");

        let bounds: Vec<u64> = est
            .lower_bounds()
            .into_iter()
            .zip(est.coverage())
            .enumerate()
            .map(|(v, (lb, &cov))| {
                let uncovered = (n as u64 - 1).saturating_sub(cov as u64);
                lb + uncovered.saturating_sub(g.degree(v as NodeId) as u64)
            })
            .collect();
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.sort_by_key(|&v| (bounds[v as usize], v));
        let scanned = n - full.pruned;
        let mut cut = BfsCut::new(n);
        let (mut expect_edges, mut expect_verts, mut replayed) = (0u64, 0u64, 0u64);
        for &v in order.iter().take(scanned) {
            if est.is_sampled(v) {
                continue;
            }
            cut.run(&g, v, u64::MAX, n, 0);
            expect_edges += cut.arcs_scanned();
            expect_verts += cut.vertices_visited();
            replayed += 1;
        }
        assert_eq!(replayed, b);
        assert_eq!(rec.counter(Counter::BfsSources), b);
        assert_eq!(rec.counter(Counter::VerticesVisited), expect_verts);
        assert_eq!(rec.counter(Counter::EdgesScanned), expect_edges);
        // On a connected graph every completed sweep still visits all n
        // vertices; the edge work is what the old formula over-charged.
        assert_eq!(expect_verts, b * n as u64);
        assert!(expect_edges <= b * g.num_arcs() as u64);
        assert_eq!(rec.counter(Counter::TopkPrunedBfs), 0);

        // Pruned mode must charge strictly less edge work when any sweep
        // is cut, and exactly what the traversals did either way.
        let rec2 = RunRecorder::new();
        let ctx2 = ExecutionContext::new().with_recorder(&rec2);
        let pruned = top_k_from_estimate_with(&g, 6, &est, true, &ctx2).unwrap();
        assert_eq!(pruned.ranked, full.ranked);
        assert!(rec2.counter(Counter::EdgesScanned) <= rec.counter(Counter::EdgesScanned));
        if pruned.pruned_bfs > 0 {
            assert!(rec2.counter(Counter::EdgesScanned) < rec.counter(Counter::EdgesScanned));
            assert_eq!(rec2.counter(Counter::TopkPrunedBfs), pruned.pruned_bfs as u64);
            assert!(rec2.counter(Counter::TopkCutLevels) >= pruned.pruned_bfs as u64);
        }
    }

    /// Recorder that logs every counter mutation in order, so tests can
    /// assert *when* counts move, not just their totals.
    #[derive(Default)]
    struct CaptureRecorder {
        log: std::sync::Mutex<Vec<(Counter, u64)>>,
    }

    impl Recorder for CaptureRecorder {
        fn enabled(&self) -> bool {
            true
        }
        fn add(&self, counter: Counter, n: u64) {
            self.log.lock().unwrap().push((counter, n));
        }
    }

    #[test]
    fn heartbeat_sees_planned_then_per_bfs_increments() {
        // Regression for the bulk post-scan `BfsSources` add: the planned
        // figure must land before any BFS, and each BFS must contribute
        // its own +1 (unit increments, not one aggregate).
        let g = gnm_random_connected(100, 220, 13);
        let est = weak_estimate(&g, 13);
        let rec = CaptureRecorder::default();
        let ctx = ExecutionContext::new().with_control(RunControl::new()).with_recorder(&rec);
        let t = top_k_from_estimate_with(&g, 5, &est, false, &ctx).unwrap();
        assert!(t.verified_with_bfs > 1, "test needs several verification BFS");

        let log = rec.log.lock().unwrap();
        let planned_at = log
            .iter()
            .position(|&(c, _)| c == Counter::BfsSourcesPlanned)
            .expect("BfsSourcesPlanned published");
        let first_bfs = log
            .iter()
            .position(|&(c, _)| c == Counter::BfsSources)
            .expect("BfsSources recorded");
        assert!(planned_at < first_bfs, "planned figure must precede the first BFS");
        let sources: Vec<u64> = log
            .iter()
            .filter(|&&(c, _)| c == Counter::BfsSources)
            .map(|&(_, n)| n)
            .collect();
        assert_eq!(sources.len(), t.verified_with_bfs, "one increment per BFS");
        assert!(sources.iter().all(|&n| n == 1), "per-BFS unit increments, not a bulk add");
        assert!(log.iter().find(|&&(c, _)| c == Counter::BfsSourcesPlanned).unwrap().1 > 0);
    }
}
