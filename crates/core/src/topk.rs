//! Exact top-k closeness via BRICS lower bounds.
//!
//! Ranking the k most central vertices is the application the paper cites
//! through Okamoto et al. (§I, §I-A). BRICS makes an *exact* top-k
//! algorithm cheap: raw estimates are partial distance sums, hence sound
//! **lower bounds** on true farness — and the Cumulative method's bounds
//! are tight because the whole inter-block mass is exact.
//!
//! The algorithm scans vertices in ascending estimated farness, verifying
//! each with one true BFS, and stops as soon as the next lower bound is no
//! better than the current k-th verified farness — everything unscanned is
//! provably outside the top-k. Vertices that served as BFS sources during
//! estimation are already exact and verify for free.

use crate::engine::ExecutionContext;
use crate::{BricsEstimator, CentralityError, FarnessEstimate};
use brics_graph::telemetry::{timed, Counter, Recorder};
use brics_graph::traversal::Bfs;
use brics_graph::{CsrGraph, NodeId, RunControl};
use serde::{Deserialize, Serialize};

/// Result of an exact top-k closeness query.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopK {
    /// The k most central vertices with their *exact* farness, ascending
    /// (ties broken by vertex id).
    pub ranked: Vec<(NodeId, u64)>,
    /// Vertices whose exact farness had to be verified with a fresh BFS.
    pub verified_with_bfs: usize,
    /// Vertices accepted for free (they were estimation BFS sources).
    pub verified_for_free: usize,
    /// Vertices pruned by the lower bound without any BFS.
    pub pruned: usize,
}

/// Computes the exact top-k closeness ranking (smallest farness) using a
/// BRICS estimate for pruning.
///
/// `estimator` controls the estimation pass (method, rate, seed); higher
/// sampling rates tighten the bounds and prune more, at higher estimation
/// cost. `k` is clamped to the vertex count.
pub fn top_k_closeness(
    g: &CsrGraph,
    k: usize,
    estimator: &BricsEstimator,
) -> Result<TopK, CentralityError> {
    top_k_closeness_in(g, k, estimator, &ExecutionContext::new())
}

/// [`top_k_closeness`] under an [`ExecutionContext`] (limits, kernel,
/// telemetry — the estimation pass records its usual phases, the
/// verification scan adds a `topk.verify` span and charges each
/// verification BFS to the kernel counters; observe-only either way).
///
/// A top-k ranking is a *certificate* — either every returned vertex is
/// provably in the top-k or the result is worthless — so unlike the
/// estimators this function cannot return a partial answer: interruption
/// during the estimation pass or the verification scan surfaces as
/// [`CentralityError::Interrupted`]. A partial estimate whose deadline has
/// not yet expired is still usable (weaker bounds just mean more BFS
/// verification).
pub fn top_k_closeness_in<R: Recorder>(
    g: &CsrGraph,
    k: usize,
    estimator: &BricsEstimator,
    ctx: &ExecutionContext<'_, R>,
) -> Result<TopK, CentralityError> {
    let rec = ctx.recorder();
    let est = estimator.run_in(g, ctx)?;
    let t = timed(rec, "topk.verify", || top_k_from_estimate_ctl(g, k, &est, ctx.control()))?;
    if rec.enabled() {
        let b = t.verified_with_bfs as u64;
        rec.add(Counter::BfsSources, b);
        // Each verification BFS scans the whole (connected) graph.
        rec.add(Counter::VerticesVisited, b * g.num_nodes() as u64);
        rec.add(Counter::EdgesScanned, b * g.num_arcs() as u64);
    }
    Ok(t)
}

/// Same as [`top_k_closeness`], reusing an existing estimate.
pub fn top_k_from_estimate(g: &CsrGraph, k: usize, est: &FarnessEstimate) -> TopK {
    top_k_from_estimate_ctl(g, k, est, &RunControl::new())
        .expect("unbounded control cannot be interrupted")
}

/// [`top_k_from_estimate`] under an [`ExecutionContext`]: the context's
/// control is consulted before each verification BFS (kernel and recorder
/// are unused — verification is plain sequential BFS).
pub fn top_k_from_estimate_in<R: Recorder>(
    g: &CsrGraph,
    k: usize,
    est: &FarnessEstimate,
    ctx: &ExecutionContext<'_, R>,
) -> Result<TopK, CentralityError> {
    top_k_from_estimate_ctl(g, k, est, ctx.control())
}

/// Control-level core of the verification scan, shared by the public entry
/// points and [`crate::engine::PreparedGraph::topk`] (which must verify in
/// working-graph ids before translating).
pub(crate) fn top_k_from_estimate_ctl(
    g: &CsrGraph,
    k: usize,
    est: &FarnessEstimate,
    ctl: &RunControl,
) -> Result<TopK, CentralityError> {
    let n = g.num_nodes();
    let k = k.min(n);
    if k == 0 {
        return Ok(TopK { ranked: Vec::new(), verified_with_bfs: 0, verified_for_free: 0, pruned: n });
    }
    // Ascending lower-bound order. On top of the estimate's built-in
    // bound (uncovered vertices are ≥ 1 hop away), at most deg(v) of the
    // uncovered vertices can be neighbours — every other one is ≥ 2 hops
    // away, which tightens the bound by another (uncovered − deg(v))⁺.
    let bounds: Vec<u64> = est
        .lower_bounds()
        .into_iter()
        .zip(est.coverage())
        .enumerate()
        .map(|(v, (lb, &cov))| {
            let uncovered = (n as u64 - 1).saturating_sub(cov as u64);
            lb + uncovered.saturating_sub(g.degree(v as NodeId) as u64)
        })
        .collect();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    order.sort_by_key(|&v| (bounds[v as usize], v));

    let mut bfs = Bfs::new(n);
    // (farness, vertex) of verified candidates; k is small, a sorted Vec
    // beats a heap here.
    let mut best: Vec<(u64, NodeId)> = Vec::with_capacity(k + 1);
    let mut verified_with_bfs = 0usize;
    let mut verified_for_free = 0usize;
    let mut scanned = 0usize;

    for &v in &order {
        let bound = bounds[v as usize];
        if best.len() == k {
            let (tau, _) = *best.last().unwrap();
            // Strictly worse bounds can never enter the top-k; ties at tau
            // are still scanned so id tie-breaking matches the exact order.
            if bound > tau {
                break;
            }
        }
        scanned += 1;
        let exact = if est.is_sampled(v) {
            verified_for_free += 1;
            est.raw()[v as usize]
        } else {
            if let Some(outcome) = ctl.should_stop() {
                return Err(CentralityError::Interrupted { outcome });
            }
            verified_with_bfs += 1;
            let (_, sum) = bfs.run_with(g, v, |_, _| {});
            sum
        };
        best.push((exact, v));
        best.sort_unstable();
        best.truncate(k);
    }

    Ok(TopK {
        ranked: best.into_iter().map(|(f, v)| (v, f)).collect(),
        verified_with_bfs,
        verified_for_free,
        pruned: n - scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_farness, Method, SampleSize};
    use brics_graph::generators::{
        community_like, gnm_random_connected, lollipop, social_like, ClassParams,
    };

    fn brute_top_k(g: &CsrGraph, k: usize) -> Vec<(NodeId, u64)> {
        let exact = exact_farness(g).unwrap();
        let mut idx: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
        idx.sort_by_key(|&v| (exact[v as usize], v));
        idx.truncate(k);
        idx.into_iter().map(|v| (v, exact[v as usize])).collect()
    }

    fn estimator() -> BricsEstimator {
        BricsEstimator::new(Method::Cumulative).sample(SampleSize::Fraction(0.3)).seed(7)
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..8 {
            let g = gnm_random_connected(80, 120, seed);
            let t = top_k_closeness(&g, 5, &estimator()).unwrap();
            assert_eq!(t.ranked, brute_top_k(&g, 5), "seed {seed}");
        }
    }

    #[test]
    fn matches_brute_force_on_class_graphs() {
        for g in [social_like(ClassParams::new(500, 3)), community_like(ClassParams::new(500, 4))]
        {
            let t = top_k_closeness(&g, 10, &estimator()).unwrap();
            assert_eq!(t.ranked, brute_top_k(&g, 10));
            assert_eq!(t.pruned + t.verified_for_free + t.verified_with_bfs, g.num_nodes());
        }
    }

    #[test]
    fn pruning_actually_prunes_and_improves_with_rate() {
        let g = social_like(ClassParams::new(800, 5));
        let prune_at = |rate: f64| {
            let e = BricsEstimator::new(Method::Cumulative)
                .sample(SampleSize::Fraction(rate))
                .seed(7);
            let t = top_k_closeness(&g, 5, &e).unwrap();
            assert_eq!(t.ranked, brute_top_k(&g, 5), "rate {rate}");
            t.pruned
        };
        let p_low = prune_at(0.2);
        let p_high = prune_at(0.8);
        assert!(p_low > 0, "bounds should prune something even at 20%");
        assert!(
            p_high > p_low && p_high > g.num_nodes() / 2,
            "pruning should strengthen with rate: {p_low} -> {p_high} of {}",
            g.num_nodes()
        );
    }

    #[test]
    fn k_clamped_and_complete() {
        let g = lollipop(5, 3);
        let t = top_k_closeness(&g, 100, &estimator()).unwrap();
        assert_eq!(t.ranked.len(), 8);
        assert_eq!(t.ranked, brute_top_k(&g, 8));
        // Ascending farness order with id tiebreaks.
        assert!(t.ranked.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn k_zero() {
        let g = lollipop(4, 2);
        let t = top_k_closeness(&g, 0, &estimator()).unwrap();
        assert!(t.ranked.is_empty());
        assert_eq!(t.pruned, g.num_nodes());
    }

    #[test]
    fn reuses_existing_estimate() {
        let g = gnm_random_connected(60, 90, 1);
        let est = estimator().run(&g).unwrap();
        let a = top_k_from_estimate(&g, 4, &est);
        let b = top_k_from_estimate(&g, 4, &est);
        assert_eq!(a.ranked, b.ranked);
        assert_eq!(a.ranked, brute_top_k(&g, 4));
    }

    #[test]
    fn ctl_interruption_is_an_error_not_a_wrong_ranking() {
        let g = gnm_random_connected(80, 120, 4);
        // Expired deadline: the estimation pass yields a (sound but empty)
        // partial estimate, and the verification scan must refuse to certify.
        let ctx = ExecutionContext::new()
            .with_control(crate::RunControl::new().with_timeout(std::time::Duration::ZERO));
        let err = top_k_closeness_in(&g, 5, &estimator(), &ctx).unwrap_err();
        assert!(matches!(
            err,
            CentralityError::Interrupted { outcome: brics_graph::RunOutcome::Deadline }
        ));

        // Cancellation mid-scan via an existing estimate.
        let est = estimator().run(&g).unwrap();
        let ctl = crate::RunControl::new();
        ctl.cancel_token().cancel();
        let ctx = ExecutionContext::new().with_control(ctl);
        let err = top_k_from_estimate_in(&g, 5, &est, &ctx).unwrap_err();
        assert!(matches!(
            err,
            CentralityError::Interrupted { outcome: brics_graph::RunOutcome::Cancelled }
        ));

        // An unexpired control certifies normally.
        let ctx = ExecutionContext::new()
            .with_control(crate::RunControl::new().with_timeout(std::time::Duration::from_secs(600)));
        let t = top_k_closeness_in(&g, 5, &estimator(), &ctx).unwrap();
        assert_eq!(t.ranked, brute_top_k(&g, 5));
    }

    #[test]
    fn full_rate_estimate_verifies_mostly_for_free() {
        let g = gnm_random_connected(70, 100, 2);
        let est = BricsEstimator::new(Method::RandomSampling)
            .sample(SampleSize::Fraction(1.0))
            .seed(0)
            .run(&g)
            .unwrap();
        let t = top_k_from_estimate(&g, 5, &est);
        assert_eq!(t.verified_with_bfs, 0);
        assert_eq!(t.ranked, brute_top_k(&g, 5));
    }
}
