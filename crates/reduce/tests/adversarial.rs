//! Adversarial structures for the reduction pipeline: shapes chosen to
//! stress the interplay *between* techniques (identical → chain → redundant
//! → contraction), where one pass's removals change what the next sees.

use brics_graph::traversal::{bfs_distances, DialBfs};
use brics_graph::{CsrGraph, GraphBuilder, NodeId};
use brics_reduce::{reconstruct_distances, reduce, ReductionConfig};

/// Oracle: every surviving source's distances, after reconstruction, match
/// the original graph exactly.
fn assert_lossless(g: &CsrGraph, config: &ReductionConfig) {
    let r = reduce(g, config);
    let mut dial = DialBfs::new(g.num_nodes());
    for s in 0..g.num_nodes() as NodeId {
        if r.removed[s as usize] {
            continue;
        }
        dial.run_with(&r.graph, r.weights.as_deref(), s, |_, _| {});
        let mut d = dial.distances()[..g.num_nodes()].to_vec();
        reconstruct_distances(&r.records, &mut d);
        assert_eq!(d, bfs_distances(g, s), "source {s} under {config:?}");
    }
}

fn all_configs() -> Vec<ReductionConfig> {
    vec![
        ReductionConfig::all(),
        ReductionConfig::all().without_contraction(),
        ReductionConfig::all().with_fixpoint(),
        ReductionConfig::cr(),
        ReductionConfig::chains_only(),
    ]
}

/// Theta graph: vertices a, b joined by three internally-disjoint paths of
/// lengths 2, 3 and 4 — one survives (or contracts), two are redundant.
#[test]
fn theta_graph() {
    let mut b = GraphBuilder::new(8);
    // a = 0, b = 1; paths: 0-2-1, 0-3-4-1, 0-5-6-7-1
    for &(u, v) in &[(0, 2), (2, 1), (0, 3), (3, 4), (4, 1), (0, 5), (5, 6), (6, 7), (7, 1)] {
        b.add_edge(u, v);
    }
    let g = b.build();
    for c in all_configs() {
        assert_lossless(&g, &c);
    }
    let r = reduce(&g, &ReductionConfig::all());
    // The two longer paths are Type-3 redundant; the shortest one survives
    // (after the removals the component degenerates into a path, whose
    // interior is no longer a Between chain, so contraction skips it).
    assert!(r.removed[3] && r.removed[4] && r.removed[5] && r.removed[6] && r.removed[7]);
    assert_eq!(r.num_surviving(), 3);
    // Fixpoint mode detects the leftover path in round 2 and strips it.
    let fix = reduce(&g, &ReductionConfig::all().with_fixpoint());
    assert_eq!(fix.num_surviving(), 1);
}

/// Figure-eight: two cycles sharing one anchor — both are Type-2 chains.
#[test]
fn figure_eight() {
    let mut b = GraphBuilder::new(7);
    for &(u, v) in &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 5), (5, 6), (6, 0)] {
        b.add_edge(u, v);
    }
    let g = b.build();
    for c in all_configs() {
        assert_lossless(&g, &c);
    }
    let r = reduce(&g, &ReductionConfig::all());
    assert_eq!(r.num_surviving(), 1, "both cycles hang off vertex 0");
}

/// A tree of chains: pendant chains hanging off pendant chains — only the
/// fixpoint mode collapses everything, but both modes must stay lossless.
#[test]
fn nested_pendant_chains() {
    // Spine 0-1-2 (0 is a K4 corner to pin degrees), chains off 1 and off
    // the middle of those chains.
    let mut b = GraphBuilder::new(14);
    for &(u, v) in &[
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), // K4
        (0, 4), (4, 5), (5, 6), // chain A
        (5, 7), (7, 8), // chain B off A's middle (makes 5 a degree-3 vertex)
        (0, 9), (9, 10), (10, 11), (11, 12), (12, 13), // long chain C
    ] {
        b.add_edge(u, v);
    }
    let g = b.build();
    for c in all_configs() {
        assert_lossless(&g, &c);
    }
    let single = reduce(&g, &ReductionConfig::all());
    let fix = reduce(&g, &ReductionConfig::all().with_fixpoint());
    assert!(fix.num_surviving() <= single.num_surviving());
    // Fixpoint cascades all the way: chains expose a redundant K4 corner,
    // whose removal turns the rest of the K4 into a removable cycle-chain,
    // leaving a single vertex.
    assert_eq!(fix.num_surviving(), 1);
    assert!(fix.stats.rounds >= 2);
}

/// Identical twins whose representative later becomes a chain node, which
/// itself hangs off a redundant vertex's neighbourhood.
#[test]
fn cascading_dependencies() {
    let mut b = GraphBuilder::new(12);
    for &(u, v) in &[
        // K4 core 0-3
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        // redundant-3 apex 4 on triangle 0,1,2
        (4, 0), (4, 1), (4, 2),
        // chain 3-5-6
        (3, 5), (5, 6),
        // twins 7,8 both adjacent to {6, 0} (identical, degree 2)
        (7, 6), (7, 0), (8, 6), (8, 0),
        // leaves 9,10,11 on vertex 3 (identical leaf group)
        (9, 3), (10, 3), (11, 3),
    ] {
        b.add_edge(u, v);
    }
    let g = b.build();
    for c in all_configs() {
        assert_lossless(&g, &c);
    }
    let r = reduce(&g, &ReductionConfig::all());
    // Twin 8 removed as identical to 7; leaves 10,11 identical to 9;
    // leaf 9 then a pendant; apex 4 redundant.
    assert!(r.removed[8]);
    assert!(r.removed[10] && r.removed[11]);
    assert!(r.removed[9]);
    assert!(r.removed[4]);
}

/// Chain of cliques: K5s connected by 2-vertex chains — contraction must
/// produce weighted edges between consecutive clique gateways.
#[test]
fn chain_of_cliques() {
    let k = 4; // cliques
    let size = 5;
    let mut edges = Vec::new();
    let mut next = 0u32;
    let mut gateways = Vec::new();
    for _ in 0..k {
        let base = next;
        for i in 0..size {
            for j in (i + 1)..size {
                edges.push((base + i, base + j));
            }
        }
        gateways.push(base);
        next += size;
    }
    // Connect gateway of clique i to gateway of clique i+1 via 2 chain nodes.
    for w in gateways.windows(2) {
        let (a, b2) = (w[0], w[1]);
        edges.push((a, next));
        edges.push((next, next + 1));
        edges.push((next + 1, b2));
        next += 2;
    }
    let g = GraphBuilder::from_edges(next as usize, &edges);
    for c in all_configs() {
        assert_lossless(&g, &c);
    }
    let r = reduce(&g, &ReductionConfig::chains_only());
    assert_eq!(r.stats.contracted_chain_nodes, 2 * (k - 1));
    let w = r.weights.as_ref().expect("contraction must produce weights");
    for win in gateways.windows(2) {
        assert_eq!(
            brics_graph::weighted::edge_weight(&r.graph, w, win[0], win[1]),
            Some(3),
            "gateway pair {win:?}"
        );
    }
}

/// Parallel identical chains *and* a direct edge: everything is redundant
/// (paper Fig. 1(d)).
#[test]
fn direct_edge_plus_identical_chains() {
    let mut b = GraphBuilder::new(10);
    for &(u, v) in &[
        (0, 1), // direct edge
        (0, 2), (2, 3), (3, 1), // chain 1
        (0, 4), (4, 5), (5, 1), // chain 2 (identical length)
        (0, 6), (6, 7), (7, 1), // chain 3 (identical length)
        (0, 8), (1, 9), // leaves to pin degrees
    ] {
        b.add_edge(u, v);
    }
    let g = b.build();
    for c in all_configs() {
        assert_lossless(&g, &c);
    }
    let r = reduce(&g, &ReductionConfig::chains_only());
    for v in 2..=7 {
        assert!(r.removed[v], "chain vertex {v} should be removed");
    }
}

/// Torus (4-regular, vertex-transitive): nothing is removable — the
/// pipeline must recognise that and leave the graph alone.
#[test]
fn torus_is_irreducible() {
    let (rows, cols) = (5, 6);
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as NodeId;
            let right = (r * cols + (c + 1) % cols) as NodeId;
            let down = (((r + 1) % rows) * cols + c) as NodeId;
            b.add_edge(v, right);
            b.add_edge(v, down);
        }
    }
    let g = b.build();
    let r = reduce(&g, &ReductionConfig::all().with_fixpoint());
    assert_eq!(r.num_surviving(), rows * cols);
    assert!(r.records.is_empty());
    assert!(r.weights.is_none());
}

/// Windmill: many triangles sharing one hub — each triangle's outer pair
/// is a cycle-chain; the hub survives alone.
#[test]
fn windmill() {
    let blades = 6;
    let mut b = GraphBuilder::new(1 + 2 * blades);
    for i in 0..blades as NodeId {
        let (x, y) = (1 + 2 * i, 2 + 2 * i);
        b.add_edge(0, x);
        b.add_edge(0, y);
        b.add_edge(x, y);
    }
    let g = b.build();
    for c in all_configs() {
        assert_lossless(&g, &c);
    }
    let r = reduce(&g, &ReductionConfig::all());
    assert_eq!(r.num_surviving(), 1);
}

/// Barbell with twin bells: two identical K4s joined by a long chain —
/// identical-node detection must NOT merge vertices across the two bells
/// (their neighbourhoods differ by the bell's internal ids).
#[test]
fn barbell_no_false_identicals() {
    let mut edges = Vec::new();
    for base in [0u32, 10] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.extend([(3, 4), (4, 5), (5, 6), (6, 10)]);
    let g = GraphBuilder::from_edges(14, &edges);
    let r = reduce(
        &g,
        &ReductionConfig {
            identical: true,
            chains: false,
            redundant: false,
            contract: false,
            fixpoint: false,
        },
    );
    // K4 corners within one bell are pairwise adjacent → never identical;
    // across bells their neighbour sets differ. Nothing to remove.
    assert_eq!(r.stats.total_removed, 0);
    for c in all_configs() {
        assert_lossless(&g, &c);
    }
}
