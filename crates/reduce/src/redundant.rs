//! Redundant 3- and 4-degree node removal (paper §III-C, Fig. 1(e)–(f)).
//!
//! A degree-3 vertex whose three neighbours are mutually adjacent, or a
//! degree-4 vertex each of whose neighbours is adjacent to at least two of
//! its other neighbours, lies on no shortest path except as an endpoint
//! (paper Fact III.7): any `x – v – y` through such a `v` can be rerouted
//! inside `N(v)` at equal or smaller length. Removal therefore preserves
//! every surviving distance, and the removed vertex's own distance is
//! `min over its neighbours + 1` (paper Algorithm 3).
//!
//! Candidates are tested against the *current* graph, so a removal may
//! enable or disable later candidates. This is sound by induction: each
//! single removal preserves all distances among the vertices that remain at
//! that moment, and reconstruction replays the log in reverse removal
//! order, so an anchor that was itself removed later is always filled in
//! before any record that reads it.

use crate::mutgraph::MutGraph;
use crate::records::Removal;
use brics_graph::NodeId;

/// Whether `v` is redundant of degree 3: its neighbours form a triangle.
pub fn is_redundant3(g: &MutGraph, v: NodeId) -> bool {
    let nbrs = g.neighbors(v);
    if nbrs.len() != 3 {
        return false;
    }
    g.has_edge(nbrs[0], nbrs[1]) && g.has_edge(nbrs[0], nbrs[2]) && g.has_edge(nbrs[1], nbrs[2])
}

/// Whether `v` is redundant of degree 4: every neighbour is adjacent to at
/// least two of `v`'s other neighbours.
pub fn is_redundant4(g: &MutGraph, v: NodeId) -> bool {
    let nbrs = g.neighbors(v);
    if nbrs.len() != 4 {
        return false;
    }
    nbrs.iter().all(|&x| {
        nbrs.iter().filter(|&&y| y != x && g.has_edge(x, y)).count() >= 2
    })
}

/// Statistics of the redundant-node pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RedundantStats {
    /// Degree-3 vertices removed.
    pub removed_deg3: usize,
    /// Degree-4 vertices removed.
    pub removed_deg4: usize,
}

impl RedundantStats {
    /// Total vertices removed by the pass.
    pub fn removed(&self) -> usize {
        self.removed_deg3 + self.removed_deg4
    }
}

/// Removes redundant 3/4-degree vertices in ascending id order, appending
/// [`Removal::Redundant`] records. Each candidate is validated against the
/// graph as it stands at that moment.
pub fn remove_redundant_nodes(g: &mut MutGraph, records: &mut Vec<Removal>) -> RedundantStats {
    let n = g.num_ids();
    let mut stats = RedundantStats::default();
    for v in 0..n as NodeId {
        if g.is_removed(v) {
            continue;
        }
        // Degrees shift as the pass removes vertices; re-testing against the
        // *current* graph keeps each accepted candidate sound on its own.
        let deg3 = is_redundant3(g, v);
        let deg4 = !deg3 && is_redundant4(g, v);
        if !deg3 && !deg4 {
            continue;
        }
        let neighbors = g.neighbors(v).to_vec();
        g.remove_vertex(v);
        records.push(Removal::Redundant { node: v, neighbors });
        if deg3 {
            stats.removed_deg3 += 1;
        } else {
            stats.removed_deg4 += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::generators::complete_graph;
    use brics_graph::GraphBuilder;

    fn mg(edges: &[(NodeId, NodeId)], n: usize) -> MutGraph {
        MutGraph::from_csr(&GraphBuilder::from_edges(n, edges))
    }

    #[test]
    fn apex_on_triangle_is_redundant3() {
        // Triangle 0,1,2 with apex 3; extra leaf 4 keeps it interesting.
        let g = mg(&[(0, 1), (1, 2), (2, 0), (3, 0), (3, 1), (3, 2), (0, 4)], 5);
        assert!(is_redundant3(&g, 3));
        assert!(!is_redundant3(&g, 0)); // degree 4
        assert!(!is_redundant3(&g, 4));
    }

    #[test]
    fn open_wedge_is_not_redundant3() {
        // 3 adjacent to 0,1,2 but 1-2 edge missing.
        let g = mg(&[(0, 1), (2, 0), (3, 0), (3, 1), (3, 2)], 4);
        assert!(!is_redundant3(&g, 3));
    }

    #[test]
    fn k5_vertices_are_redundant4() {
        let g = MutGraph::from_csr(&complete_graph(5));
        for v in 0..5 {
            assert!(is_redundant4(&g, v));
        }
    }

    #[test]
    fn four_cycle_neighborhood_is_redundant4() {
        // Apex 4 over a 4-cycle 0-1-2-3-0 (no diagonals).
        let g = mg(&[(0, 1), (1, 2), (2, 3), (3, 0), (4, 0), (4, 1), (4, 2), (4, 3)], 5);
        assert!(is_redundant4(&g, 4));
    }

    #[test]
    fn sparse_neighborhood_not_redundant4() {
        // Apex over a path 0-1-2 3: endpoint neighbours have 1 adjacency.
        let g = mg(&[(0, 1), (1, 2), (2, 3), (4, 0), (4, 1), (4, 2), (4, 3)], 5);
        assert!(!is_redundant4(&g, 4));
    }

    #[test]
    fn removal_logs_neighbors() {
        // Triangle 0,1,2 pinned by leaves 4,5,6 (so the corners are not
        // redundant themselves) with apex 3 over the triangle.
        let mut g = mg(
            &[(0, 1), (1, 2), (2, 0), (3, 0), (3, 1), (3, 2), (0, 4), (1, 5), (2, 6)],
            7,
        );
        let mut records = Vec::new();
        let stats = remove_redundant_nodes(&mut g, &mut records);
        assert_eq!(stats.removed_deg3, 1);
        assert!(g.is_removed(3));
        assert_eq!(
            records,
            vec![Removal::Redundant { node: 3, neighbors: vec![0, 1, 2] }]
        );
    }

    #[test]
    fn adjacent_candidates_become_independent_set() {
        // Two non-adjacent apexes 3 and 4 over the same pinned triangle:
        // both are candidates and both can go (they are independent).
        let mut g = mg(
            &[
                (0, 1), (1, 2), (2, 0),
                (3, 0), (3, 1), (3, 2),
                (4, 0), (4, 1), (4, 2),
                (0, 5), (1, 6), (2, 7),
            ],
            8,
        );
        let mut records = Vec::new();
        let stats = remove_redundant_nodes(&mut g, &mut records);
        assert_eq!(stats.removed_deg3, 2);
        assert!(g.is_removed(3) && g.is_removed(4));
    }

    #[test]
    fn k4_stops_after_one_removal() {
        // In K4 every vertex is redundant3; removing 0 leaves a triangle of
        // degree-2 vertices, which are no longer candidates.
        let mut g = MutGraph::from_csr(&complete_graph(4));
        let mut records = Vec::new();
        let stats = remove_redundant_nodes(&mut g, &mut records);
        assert_eq!(stats.removed(), 1);
        assert_eq!(g.num_live(), 3);
    }

    #[test]
    fn chained_removals_reconstruct_exactly() {
        // K5: vertex 0 goes (redundant4), then vertex 1 becomes redundant3
        // in the remaining K4 and goes too — its record is an *anchor* of
        // 0's record. Reverse-order reconstruction must resolve the chain.
        use crate::records::reconstruct_distances;
        use brics_graph::traversal::bfs_distances;
        let csr = complete_graph(5);
        let mut g = MutGraph::from_csr(&csr);
        let mut records = Vec::new();
        let stats = remove_redundant_nodes(&mut g, &mut records);
        assert_eq!(stats.removed(), 2);
        assert!(g.is_removed(0) && g.is_removed(1));
        let reduced = g.to_csr();
        for s in [2u32, 3, 4] {
            let mut d = bfs_distances(&reduced, s);
            reconstruct_distances(&records, &mut d);
            assert_eq!(d, bfs_distances(&csr, s), "source {s}");
        }
    }
}
