//! Chain detection, classification and removal (paper §III-B, Fig. 1).
//!
//! A *chain* is a maximal run of degree-2 vertices between two endpoints of
//! other degree (plus single pendant leaves, the degenerate length-1 case).
//! The paper's four redundant types are removed; a non-redundant chain — the
//! unique shortest route between its endpoints — stays in the graph:
//!
//! * **Type-1 pendant** — the run ends in a degree-1 vertex: nothing beyond
//!   it, so every distance into the run goes through the inner anchor.
//! * **Type-2 cycle** — the run closes a loop on one anchor.
//! * **Type-3 longer-parallel** — a strictly longer parallel chain between
//!   the same endpoints (incl. when the direct edge exists, Fig. 1(d)).
//! * **Type-4 identical-parallel** — equal-length parallel chains; one
//!   representative chain survives per group.
//!
//! Classification is made non-overlapping in exactly the order above, as
//! §III-B requires.

use crate::mutgraph::MutGraph;
use crate::records::{ChainKind, Removal};
use brics_graph::hash::FxHashMap;
use brics_graph::{NodeId, RunControl, RunOutcome};

/// Outer-loop iterations between [`RunControl::should_stop`] consultations.
/// A check is one atomic load plus `Instant::now()`; every 4096 vertices it
/// is far below measurement noise while bounding interruption latency to a
/// few thousand O(degree) steps.
const CHECK_INTERVAL: usize = 4096;

/// Tighter interval for the *removal* loops: deleting a chain node's
/// back-edge from a hub anchor's adjacency list costs O(hub degree), so a
/// few hundred removals can already be milliseconds on skewed graphs.
const REMOVAL_CHECK_INTERVAL: usize = 256;

/// Shape of a detected maximal chain, before redundancy classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainShape {
    /// Run terminates in a degree-1 vertex (included in `nodes`);
    /// `u` is the surviving anchor, `v == u`.
    Pendant,
    /// Run closes a cycle on anchor `u == v`.
    Cycle,
    /// Run connects two distinct endpoints of degree ≥ 3.
    Between,
    /// The entire connected component is one cycle of degree-2 vertices;
    /// there is no anchor, so the chain is never removed.
    FullCycle,
}

/// A maximal chain found by [`find_chains`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectedChain {
    /// First endpoint (the anchor for pendant/cycle shapes).
    pub u: NodeId,
    /// Second endpoint (`== u` for pendant/cycle/full-cycle shapes).
    pub v: NodeId,
    /// The degree-≤2 run in path order from `u` towards `v`.
    pub nodes: Vec<NodeId>,
    /// Structural shape.
    pub shape: ChainShape,
}

/// Counters reported by the chain pass (Table I's "Chain Nodes" and the
/// identical-chain share of its "Identical / Ch.Nodes" column).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Vertices lying in any detected chain (kept or removed).
    pub total_chain_nodes: usize,
    /// Vertices removed by the pass.
    pub removed_chain_nodes: usize,
    /// Vertices removed as identical-parallel (Type-4) chains.
    pub identical_chain_nodes: usize,
    /// Number of chains removed, by type: (pendant, cycle, longer, identical).
    pub removed_chains_by_type: [usize; 4],
}

/// Finds every maximal chain among the live vertices of `g`.
pub fn find_chains(g: &MutGraph) -> Vec<DetectedChain> {
    find_chains_ctl(g, &RunControl::new()).expect("unbounded control cannot stop")
}

/// [`find_chains`] under a [`RunControl`], checked every
/// `CHECK_INTERVAL` scan positions. Detection does not mutate the graph,
/// so interruption simply discards the partial chain list.
pub fn find_chains_ctl(
    g: &MutGraph,
    ctl: &RunControl,
) -> Result<Vec<DetectedChain>, RunOutcome> {
    let n = g.num_ids();
    let mut in_chain = vec![false; n];
    let mut chains = Vec::new();

    // Walk helper: from `prev = start`, step to `first`, extend while the
    // current vertex has degree 2. Returns the endpoint reached, or None if
    // the walk returned to `start` (component is a pure cycle).
    let walk = |start: NodeId,
                first: NodeId,
                out: &mut Vec<NodeId>,
                in_chain: &mut Vec<bool>|
     -> Option<NodeId> {
        let mut prev = start;
        let mut cur = first;
        loop {
            if cur == start {
                return None;
            }
            if g.degree(cur) != 2 {
                return Some(cur);
            }
            in_chain[cur as usize] = true;
            out.push(cur);
            let nbrs = g.neighbors(cur);
            let nxt = if nbrs[0] == prev { nbrs[1] } else { nbrs[0] };
            prev = cur;
            cur = nxt;
        }
    };

    for s in 0..n as NodeId {
        if s as usize % CHECK_INTERVAL == 0 {
            if let Some(o) = ctl.should_stop() {
                return Err(o);
            }
        }
        if g.is_removed(s) || g.degree(s) != 2 || in_chain[s as usize] {
            continue;
        }
        in_chain[s as usize] = true;
        let (a, b) = (g.neighbors(s)[0], g.neighbors(s)[1]);
        let mut left = Vec::new();
        let mut right = Vec::new();
        let end_left = walk(s, a, &mut left, &mut in_chain);
        if end_left.is_none() {
            // Pure cycle component: `left` holds every other run vertex.
            let mut nodes = vec![s];
            nodes.extend(left);
            chains.push(DetectedChain { u: s, v: s, nodes, shape: ChainShape::FullCycle });
            continue;
        }
        let end_right = walk(s, b, &mut right, &mut in_chain);
        let eu = end_left.unwrap();
        let ev = end_right.expect("right walk cannot re-close a non-cycle");

        // Assemble the run in path order from eu to ev.
        let mut nodes: Vec<NodeId> = left.iter().rev().copied().collect();
        nodes.push(s);
        nodes.extend(right.iter().copied());

        let (du, dv) = (g.degree(eu), g.degree(ev));
        if eu == ev {
            chains.push(DetectedChain { u: eu, v: eu, nodes, shape: ChainShape::Cycle });
        } else if du == 1 && dv == 1 {
            // Whole component is a path: anchor at eu, absorb ev.
            nodes.push(ev);
            in_chain[ev as usize] = true;
            chains.push(DetectedChain { u: eu, v: eu, nodes, shape: ChainShape::Pendant });
        } else if dv == 1 {
            nodes.push(ev);
            in_chain[ev as usize] = true;
            chains.push(DetectedChain { u: eu, v: eu, nodes, shape: ChainShape::Pendant });
        } else if du == 1 {
            nodes.reverse();
            nodes.push(eu);
            in_chain[eu as usize] = true;
            chains.push(DetectedChain { u: ev, v: ev, nodes, shape: ChainShape::Pendant });
        } else {
            chains.push(DetectedChain { u: eu, v: ev, nodes, shape: ChainShape::Between });
        }
    }

    // Degenerate pendant leaves with no degree-2 run: a degree-1 vertex
    // whose neighbour is not degree 2 (else a walk above already owns it).
    for v in 0..n as NodeId {
        if v as usize % CHECK_INTERVAL == 0 {
            if let Some(o) = ctl.should_stop() {
                return Err(o);
            }
        }
        if g.is_removed(v) || g.degree(v) != 1 || in_chain[v as usize] {
            continue;
        }
        let w = g.neighbors(v)[0];
        if g.degree(w) == 2 {
            // `v` is the surviving anchor of a whole-path component whose
            // run was collected by a walk above; nothing to do.
            continue;
        }
        if g.degree(w) == 1 {
            // Two-vertex component: keep the smaller id as anchor.
            if in_chain[w as usize] {
                continue;
            }
            let (anchor, leaf) = if v < w { (v, w) } else { (w, v) };
            in_chain[leaf as usize] = true;
            chains
                .push(DetectedChain { u: anchor, v: anchor, nodes: vec![leaf], shape: ChainShape::Pendant });
        } else {
            in_chain[v as usize] = true;
            chains.push(DetectedChain { u: w, v: w, nodes: vec![v], shape: ChainShape::Pendant });
        }
    }
    Ok(chains)
}

/// Detects chains, removes the redundant ones, appends [`Removal::Chain`]
/// records, and returns pass statistics.
pub fn remove_redundant_chains(g: &mut MutGraph, records: &mut Vec<Removal>) -> ChainStats {
    remove_redundant_chains_ctl(g, &RunControl::new(), records)
        .expect("unbounded control cannot stop")
}

/// [`remove_redundant_chains`] under a [`RunControl`]. The removal loop is
/// checked every `CHECK_INTERVAL` chains: each removal can cost up to
/// O(max degree) (deleting a hub's back-edge), so on hub-heavy graphs the
/// loop, not detection, can dominate. Interruption returns `Err(outcome)`
/// leaving `g` and `records` partially mutated — callers (the pipeline)
/// must discard both, which [`crate::reduce_ctl`] does.
pub fn remove_redundant_chains_ctl(
    g: &mut MutGraph,
    ctl: &RunControl,
    records: &mut Vec<Removal>,
) -> Result<ChainStats, RunOutcome> {
    let chains = find_chains_ctl(g, ctl)?;
    let mut stats = ChainStats {
        total_chain_nodes: chains.iter().map(|c| c.nodes.len()).sum(),
        ..ChainStats::default()
    };

    // Partition: pendant / cycle removed outright; Between grouped by
    // endpoint pair for the parallel analysis; full cycles kept.
    let mut groups: FxHashMap<(NodeId, NodeId), Vec<DetectedChain>> = FxHashMap::default();
    let mut removals: Vec<(DetectedChain, ChainKind)> = Vec::new();
    for c in chains {
        match c.shape {
            ChainShape::Pendant => removals.push((c, ChainKind::Pendant)),
            ChainShape::Cycle => removals.push((c, ChainKind::Cycle)),
            ChainShape::FullCycle => {}
            ChainShape::Between => {
                let key = (c.u.min(c.v), c.u.max(c.v));
                groups.entry(key).or_default().push(c);
            }
        }
    }
    let mut keys: Vec<(NodeId, NodeId)> = groups.keys().copied().collect();
    keys.sort_unstable(); // deterministic removal order
    for (i, key) in keys.into_iter().enumerate() {
        if i % CHECK_INTERVAL == 0 {
            if let Some(o) = ctl.should_stop() {
                return Err(o);
            }
        }
        let mut group = groups.remove(&key).unwrap();
        let direct_edge = g.has_edge(key.0, key.1);
        // Shortest chain first; ties broken by first interior vertex id so
        // the surviving representative is deterministic.
        group.sort_by_key(|c| (c.nodes.len(), c.nodes[0]));
        let keep_len = if direct_edge { 0 } else { group[0].nodes.len() };
        let start = usize::from(!direct_edge); // keep group[0] unless direct edge
        for c in group.into_iter().skip(start) {
            let kind = if !direct_edge && c.nodes.len() == keep_len {
                ChainKind::IdenticalParallel
            } else {
                ChainKind::LongerParallel
            };
            removals.push((c, kind));
        }
    }

    for (i, (c, kind)) in removals.into_iter().enumerate() {
        if i % REMOVAL_CHECK_INTERVAL == 0 {
            if let Some(o) = ctl.should_stop() {
                return Err(o);
            }
        }
        stats.removed_chain_nodes += c.nodes.len();
        match kind {
            ChainKind::Pendant => stats.removed_chains_by_type[0] += 1,
            ChainKind::Cycle => stats.removed_chains_by_type[1] += 1,
            ChainKind::LongerParallel => stats.removed_chains_by_type[2] += 1,
            ChainKind::IdenticalParallel => {
                stats.removed_chains_by_type[3] += 1;
                stats.identical_chain_nodes += c.nodes.len();
            }
            ChainKind::Contracted => unreachable!("contraction happens in the pipeline"),
        }
        for &x in &c.nodes {
            g.remove_vertex(x);
        }
        records.push(Removal::Chain { u: c.u, v: c.v, nodes: c.nodes, kind });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::generators::{cycle_graph, path_graph};
    use brics_graph::GraphBuilder;

    fn mg(edges: &[(NodeId, NodeId)], n: usize) -> MutGraph {
        MutGraph::from_csr(&GraphBuilder::from_edges(n, edges))
    }

    #[test]
    fn pendant_chain_detected_with_terminal() {
        // Triangle 0-1-2 with pendant path 2-3-4-5. The triangle's two
        // degree-2 vertices 0, 1 also form a cycle-chain anchored at 2.
        let g = mg(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)], 6);
        let chains = find_chains(&g);
        assert_eq!(chains.len(), 2);
        let pendant = chains.iter().find(|c| c.shape == ChainShape::Pendant).unwrap();
        assert_eq!(pendant.u, 2);
        assert_eq!(pendant.nodes, vec![3, 4, 5]);
        let cyc = chains.iter().find(|c| c.shape == ChainShape::Cycle).unwrap();
        assert_eq!(cyc.u, 2);
        assert_eq!(cyc.nodes.len(), 2);
    }

    #[test]
    fn single_leaf_detected() {
        // K4 (no degree-2 vertices) with one leaf on vertex 0.
        let g = mg(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4)], 5);
        let chains = find_chains(&g);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].shape, ChainShape::Pendant);
        assert_eq!(chains[0].u, 0);
        assert_eq!(chains[0].nodes, vec![4]);
    }

    #[test]
    fn cycle_chain_detected() {
        // K4 on 0..4 plus a cycle 0-4-5-6-0.
        let g = mg(
            &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 4), (4, 5), (5, 6), (6, 0)],
            7,
        );
        let chains = find_chains(&g);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.shape, ChainShape::Cycle);
        assert_eq!(c.u, 0);
        assert_eq!(c.v, 0);
        let mut nodes = c.nodes.clone();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![4, 5, 6]);
        // Path order: consecutive nodes adjacent, ends adjacent to anchor.
        assert!(g.has_edge(c.u, c.nodes[0]));
        assert!(g.has_edge(c.u, *c.nodes.last().unwrap()));
    }

    #[test]
    fn between_chain_detected() {
        // Two K4s joined by a 2-node chain: endpoints 3 and 6.
        let g = mg(
            &[
                (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), // K4 A
                (3, 4), (4, 5), (5, 6), // chain
                (6, 7), (6, 8), (6, 9), (7, 8), (7, 9), (8, 9), // K4 B
            ],
            10,
        );
        let chains = find_chains(&g);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.shape, ChainShape::Between);
        let (mut a, mut b) = (c.u, c.v);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        assert_eq!((a, b), (3, 6));
        assert_eq!(c.nodes.len(), 2);
    }

    #[test]
    fn full_cycle_not_removable() {
        let mut g = MutGraph::from_csr(&cycle_graph(6));
        let chains = find_chains(&g);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].shape, ChainShape::FullCycle);
        let mut records = Vec::new();
        let stats = remove_redundant_chains(&mut g, &mut records);
        assert_eq!(stats.removed_chain_nodes, 0);
        assert!(records.is_empty());
        assert_eq!(g.num_live(), 6);
    }

    #[test]
    fn whole_path_component_anchored_at_one_end() {
        let mut g = MutGraph::from_csr(&path_graph(5));
        let chains = find_chains(&g);
        assert_eq!(chains.len(), 1);
        let c = &chains[0];
        assert_eq!(c.shape, ChainShape::Pendant);
        assert_eq!(c.nodes.len(), 4); // everything except the anchor
        let mut records = Vec::new();
        remove_redundant_chains(&mut g, &mut records);
        assert_eq!(g.num_live(), 1);
    }

    #[test]
    fn parallel_chains_keep_shortest() {
        // Endpoints 0 and 1; chains 0-2-1 (len 1), 0-3-4-1 (len 2).
        let mut g = mg(&[(0, 2), (2, 1), (0, 3), (3, 4), (4, 1), (0, 5), (1, 6)], 7);
        // leaves 5, 6 give endpoints degree 3 so the runs are Between chains
        let mut records = Vec::new();
        let stats = remove_redundant_chains(&mut g, &mut records);
        assert!(!g.is_removed(2), "shortest parallel chain must survive");
        assert!(g.is_removed(3) && g.is_removed(4));
        assert_eq!(stats.removed_chains_by_type[2], 1); // one longer-parallel
        assert_eq!(stats.identical_chain_nodes, 0);
    }

    #[test]
    fn identical_parallel_chains_keep_one() {
        // Two equal 2-node chains between 0 and 1 (+ leaves for degree).
        let mut g = mg(
            &[(0, 2), (2, 3), (3, 1), (0, 4), (4, 5), (5, 1), (0, 6), (1, 7), (0, 1)],
            8,
        );
        // Note: direct edge 0-1 exists → per Fig. 1(d) ALL chains are redundant.
        let mut records = Vec::new();
        let stats = remove_redundant_chains(&mut g, &mut records);
        assert!(g.is_removed(2) && g.is_removed(3) && g.is_removed(4) && g.is_removed(5));
        assert_eq!(stats.removed_chains_by_type[2], 2);
        // Without the direct edge, one representative chain survives.
        let mut g2 = mg(&[(0, 2), (2, 3), (3, 1), (0, 4), (4, 5), (5, 1), (0, 6), (1, 7)], 8);
        let mut records2 = Vec::new();
        let stats2 = remove_redundant_chains(&mut g2, &mut records2);
        assert!(!g2.is_removed(2) && !g2.is_removed(3), "representative chain survives");
        assert!(g2.is_removed(4) && g2.is_removed(5));
        assert_eq!(stats2.removed_chains_by_type[3], 1);
        assert_eq!(stats2.identical_chain_nodes, 2);
    }

    #[test]
    fn two_vertex_component() {
        let mut g = mg(&[(0, 1)], 2);
        let chains = find_chains(&g);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].u, 0);
        assert_eq!(chains[0].nodes, vec![1]);
        let mut records = Vec::new();
        remove_redundant_chains(&mut g, &mut records);
        assert_eq!(g.num_live(), 1);
    }

    #[test]
    fn stats_count_total_nodes() {
        // Triangle + pendant path of 2: the triangle's degree-2 vertices 1, 2
        // form a cycle-chain (2 nodes) and the pendant run has 2 nodes.
        let g = mg(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4)], 5);
        let chains = find_chains(&g);
        let total: usize = chains.iter().map(|c| c.nodes.len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn star_leaves_are_individual_pendants() {
        let mut g = MutGraph::from_csr(&brics_graph::generators::star_graph(4));
        let chains = find_chains(&g);
        assert_eq!(chains.len(), 3);
        assert!(chains.iter().all(|c| c.shape == ChainShape::Pendant && c.u == 0));
        let mut records = Vec::new();
        let stats = remove_redundant_chains(&mut g, &mut records);
        assert_eq!(stats.removed_chain_nodes, 3);
        assert_eq!(g.num_live(), 1);
    }
}
