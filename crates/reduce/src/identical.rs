//! Identical-node detection and removal (paper §III-A).
//!
//! Two vertices are *identical* when their open neighbourhoods are equal —
//! which for a simple graph implies they are non-adjacent. Every BFS from
//! anywhere else assigns them the same distance, so each group keeps one
//! representative and the rest are removed.
//!
//! Detection hashes each live vertex's sorted neighbour list (the paper's
//! "hashing the neighbour list" suggestion) and then verifies equality
//! exactly within each bucket, so hash collisions can never merge distinct
//! groups.

use crate::mutgraph::MutGraph;
use crate::records::Removal;
use brics_graph::hash::{hash_ids, FxHashMap};
use brics_graph::{NodeId, RunControl, RunOutcome};

/// Loop iterations between [`RunControl::should_stop`] consultations.
/// Removals are checked more often (every [`REMOVAL_CHECK_INTERVAL`]) than
/// scans: deleting a member's back-edge from a hub's adjacency list costs
/// O(hub degree), so a few hundred removals can already be milliseconds.
const SCAN_CHECK_INTERVAL: usize = 4096;
const REMOVAL_CHECK_INTERVAL: usize = 256;

/// One group of mutually identical vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdenticalGroup {
    /// The surviving representative (smallest id in the group).
    pub rep: NodeId,
    /// The removed members (all ids except `rep`).
    pub removed: Vec<NodeId>,
    /// The group's shared degree at detection time (removals may change the
    /// rep's degree afterwards; Table-I classification needs this snapshot).
    pub degree: usize,
}

/// Finds all identical-node groups among live vertices of `g`.
///
/// Vertices of degree 0 are ignored (they are either removed already or
/// meaningless for a connected input).
pub fn find_identical_groups(g: &MutGraph) -> Vec<IdenticalGroup> {
    find_identical_groups_ctl(g, &RunControl::new()).expect("unbounded control cannot stop")
}

/// [`find_identical_groups`] under a [`RunControl`]. Detection is
/// read-only, so interruption simply discards the partial group list.
pub fn find_identical_groups_ctl(
    g: &MutGraph,
    ctl: &RunControl,
) -> Result<Vec<IdenticalGroup>, RunOutcome> {
    let mut buckets: FxHashMap<u64, Vec<NodeId>> = FxHashMap::default();
    for v in 0..g.num_ids() as NodeId {
        if v as usize % SCAN_CHECK_INTERVAL == 0 {
            if let Some(o) = ctl.should_stop() {
                return Err(o);
            }
        }
        if g.is_removed(v) || g.degree(v) == 0 {
            continue;
        }
        buckets.entry(hash_ids(g.neighbors(v))).or_default().push(v);
    }
    let mut groups = Vec::new();
    let mut bucket_keys: Vec<u64> = buckets
        .iter()
        .filter(|(_, vs)| vs.len() > 1)
        .map(|(&k, _)| k)
        .collect();
    bucket_keys.sort_unstable(); // deterministic output order
    for (i, key) in bucket_keys.into_iter().enumerate() {
        if i % SCAN_CHECK_INTERVAL == 0 {
            if let Some(o) = ctl.should_stop() {
                return Err(o);
            }
        }
        let mut members = buckets.remove(&key).unwrap();
        // Exact verification: sort by neighbour list, then group equal runs.
        members.sort_by(|&a, &b| g.neighbors(a).cmp(g.neighbors(b)).then(a.cmp(&b)));
        let mut i = 0;
        while i < members.len() {
            let mut j = i + 1;
            while j < members.len() && g.neighbors(members[j]) == g.neighbors(members[i]) {
                j += 1;
            }
            if j - i > 1 {
                groups.push(IdenticalGroup {
                    rep: members[i],
                    removed: members[i + 1..j].to_vec(),
                    degree: g.degree(members[i]),
                });
            }
            i = j;
        }
    }
    groups.sort_by_key(|g| g.rep);
    Ok(groups)
}

/// Detects identical groups, removes all non-representatives from `g`, and
/// appends the corresponding [`Removal::Identical`] records.
///
/// Returns `(plain_removed, chain_shaped_removed)`: members of degree-2
/// groups are identical *chain* nodes of length 1 (paper Fig. 1(c) with
/// k = ℓ = 1) and are counted separately for Table I. Degrees are
/// snapshotted at detection time — removals from one group can change
/// another rep's degree.
pub fn remove_identical_nodes(g: &mut MutGraph, records: &mut Vec<Removal>) -> (usize, usize) {
    remove_identical_nodes_ctl(g, &RunControl::new(), records)
        .expect("unbounded control cannot stop")
}

/// [`remove_identical_nodes`] under a [`RunControl`]. Interruption returns
/// `Err(outcome)` leaving `g` and `records` partially mutated — callers
/// must discard both, which [`crate::reduce_ctl`] does.
pub fn remove_identical_nodes_ctl(
    g: &mut MutGraph,
    ctl: &RunControl,
    records: &mut Vec<Removal>,
) -> Result<(usize, usize), RunOutcome> {
    let groups = find_identical_groups_ctl(g, ctl)?;
    let (mut plain, mut chain_shaped) = (0usize, 0usize);
    let mut since_check = 0usize;
    for group in groups {
        let chainish = group.degree == 2;
        for node in group.removed {
            since_check += 1;
            if since_check >= REMOVAL_CHECK_INTERVAL {
                since_check = 0;
                if let Some(o) = ctl.should_stop() {
                    return Err(o);
                }
            }
            g.remove_vertex(node);
            records.push(Removal::Identical { node, rep: group.rep });
            if chainish {
                chain_shaped += 1;
            } else {
                plain += 1;
            }
        }
    }
    Ok((plain, chain_shaped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::generators::{complete_graph, star_graph};
    use brics_graph::GraphBuilder;

    fn mg(edges: &[(NodeId, NodeId)], n: usize) -> MutGraph {
        MutGraph::from_csr(&GraphBuilder::from_edges(n, edges))
    }

    #[test]
    fn star_leaves_form_one_group() {
        let g = MutGraph::from_csr(&star_graph(6));
        let groups = find_identical_groups(&g);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].rep, 1);
        assert_eq!(groups[0].removed, vec![2, 3, 4, 5]);
    }

    #[test]
    fn clique_has_no_identical_nodes() {
        // In K_n, neighbourhoods all differ (each excludes the vertex itself).
        let g = MutGraph::from_csr(&complete_graph(5));
        assert!(find_identical_groups(&g).is_empty());
    }

    #[test]
    fn degree_two_twins_detected() {
        // 2 and 3 both adjacent to exactly {0, 1}.
        let g = mg(&[(0, 2), (1, 2), (0, 3), (1, 3), (0, 1)], 4);
        let groups = find_identical_groups(&g);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].rep, 2);
        assert_eq!(groups[0].removed, vec![3]);
    }

    #[test]
    fn adjacent_vertices_never_identical() {
        // 0 and 1 adjacent; N(0) = {1, 2}, N(1) = {0, 2} differ.
        let g = mg(&[(0, 1), (0, 2), (1, 2)], 3);
        assert!(find_identical_groups(&g).is_empty());
    }

    #[test]
    fn multiple_groups_on_different_hubs() {
        // Leaves 3,4 on hub 0; leaves 5,6,7 on hub 1.
        let g = mg(&[(0, 1), (1, 2), (2, 0), (0, 3), (0, 4), (1, 5), (1, 6), (1, 7)], 8);
        let groups = find_identical_groups(&g);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].removed, vec![4]);
        assert_eq!(groups[1].removed, vec![6, 7]);
    }

    #[test]
    fn removal_logs_and_removes() {
        let mut g = MutGraph::from_csr(&star_graph(5));
        let mut records = Vec::new();
        let (plain, chain_shaped) = remove_identical_nodes(&mut g, &mut records);
        assert_eq!(plain + chain_shaped, 3);
        assert_eq!(chain_shaped, 0); // leaves are degree-1, not chain-shaped
        assert_eq!(records.len(), 3);
        assert!(g.is_removed(2) && g.is_removed(3) && g.is_removed(4));
        assert!(!g.is_removed(1));
        assert_eq!(g.degree(0), 1); // only the representative leaf remains
        for r in &records {
            match r {
                Removal::Identical { rep, .. } => assert_eq!(*rep, 1),
                other => panic!("unexpected record {other:?}"),
            }
        }
    }

    #[test]
    fn skips_removed_vertices() {
        let mut g = MutGraph::from_csr(&star_graph(4));
        g.remove_vertex(3);
        let groups = find_identical_groups(&g);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].removed, vec![2]);
    }

    #[test]
    fn deterministic_order() {
        let g = mg(&[(0, 3), (0, 4), (1, 5), (1, 6), (0, 1), (1, 2), (2, 0)], 7);
        let a = find_identical_groups(&g);
        let b = find_identical_groups(&g);
        assert_eq!(a, b);
    }
}
