//! Removal records and distance reconstruction.
//!
//! Every reduction logs what it removed and which surviving vertices anchor
//! the removed ones. Given a BFS distance array computed on the reduced
//! graph, [`reconstruct_distances`] replays the log *in reverse removal
//! order* — so an anchor that was itself removed by a later pass is filled
//! in before anything depending on it — and recovers the exact distance of
//! every removed vertex. These are the paper's Algorithm 2 (chains) and
//! Algorithm 3 (redundant nodes), plus the representative rule for
//! identical nodes (§III-A).

use brics_graph::{Dist, NodeId, INFINITE_DIST};
use serde::{Deserialize, Serialize};

/// Which of the paper's four redundant-chain types a removed chain is
/// (Fig. 1 (a)–(d)).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChainKind {
    /// Type-1: pendant chain; one end of the run terminates in a degree-1
    /// vertex. The whole run including the terminal is removed and is
    /// reachable only through the anchor `u`.
    Pendant,
    /// Type-2: the run closes a cycle on a single anchor `u == v`.
    Cycle,
    /// Type-3: a strictly longer parallel chain between `u` and `v` (or any
    /// parallel chain when the direct edge `u–v` exists, Fig. 1(d)).
    LongerParallel,
    /// Type-4: an identical (equal-length, same-endpoint) parallel chain;
    /// one chain of the group survives.
    IdenticalParallel,
    /// A *contracted* non-redundant chain: the run was replaced by a single
    /// weighted edge `u–v` of weight `len + 1`, so removal is lossless even
    /// though the chain was the (or a) shortest route between its
    /// endpoints. Distances reconstruct exactly like the parallel kinds.
    /// This is the extension that realises the paper's road-network chain
    /// speedups (§IV-C2(d)); see `brics-reduce`'s crate docs.
    Contracted,
}

/// One logged removal.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Removal {
    /// `node` had the same open neighbourhood as the surviving `rep`;
    /// `d(w, node) = d(w, rep)` for every other vertex `w`.
    Identical {
        /// The removed vertex.
        node: NodeId,
        /// Its surviving representative.
        rep: NodeId,
    },
    /// A removed redundant chain (for [`ChainKind::Pendant`] and
    /// [`ChainKind::Cycle`], `v == u`; a pendant run's terminal vertex is
    /// the last element of `nodes`).
    Chain {
        /// First endpoint (the anchor for pendant/cycle kinds).
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
        /// The removed run, in path order from `u` towards `v`.
        nodes: Vec<NodeId>,
        /// Which redundant-chain type this was.
        kind: ChainKind,
    },
    /// A redundant 3/4-degree vertex; all of `neighbors` survive the
    /// reduction pass that removed it.
    Redundant {
        /// The removed vertex.
        node: NodeId,
        /// Its neighbours at removal time (the reconstruction anchors).
        neighbors: Vec<NodeId>,
    },
}

impl Removal {
    /// Number of vertices this record removes.
    pub fn removed_count(&self) -> usize {
        match self {
            Removal::Identical { .. } | Removal::Redundant { .. } => 1,
            Removal::Chain { nodes, .. } => nodes.len(),
        }
    }

    /// Iterates over the removed vertex ids.
    pub fn removed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        match self {
            Removal::Identical { node, .. } | Removal::Redundant { node, .. } => {
                std::slice::from_ref(node).iter().copied()
            }
            Removal::Chain { nodes, .. } => nodes.iter().copied(),
        }
    }

    /// The surviving vertices this record's reconstruction reads from.
    /// ("Surviving" relative to the pass that created the record — an
    /// earlier pass's anchor may be removed by a later pass, which is why
    /// reconstruction runs in reverse order.)
    pub fn anchors(&self) -> Vec<NodeId> {
        match self {
            Removal::Identical { rep, .. } => vec![*rep],
            Removal::Chain { u, v, .. } => {
                if u == v {
                    vec![*u]
                } else {
                    vec![*u, *v]
                }
            }
            Removal::Redundant { neighbors, .. } => neighbors.clone(),
        }
    }
}

/// Saturating distance increment that keeps `INFINITE_DIST` infinite.
#[inline]
fn plus(d: Dist, inc: u32) -> Dist {
    if d == INFINITE_DIST {
        INFINITE_DIST
    } else {
        d.saturating_add(inc)
    }
}

/// Applies one record to a distance array: fills the distances of the
/// vertices it removed from the distances of its anchors.
///
/// Anchors that are unreachable (or absent — e.g. outside the current
/// block in block-local replay) saturate at `INFINITE_DIST`, so a parallel
/// chain with one endpoint missing degrades gracefully to the one-sided
/// (pendant-style) distance.
#[inline]
pub fn apply_record(rec: &Removal, dist: &mut [Dist]) {
    match rec {
        Removal::Identical { node, rep } => {
            // d(w, node) = d(w, rep) for every w other than the pair itself.
            // When the source *is* the representative (d = 0), the twin sits
            // at distance exactly 2: the pair is non-adjacent (open
            // neighbourhoods are equal in a simple graph) and shares at
            // least one neighbour.
            let d = dist[*rep as usize];
            dist[*node as usize] = if d == 0 { 2 } else { d };
        }
        Removal::Redundant { node, neighbors } => {
            let best = neighbors
                .iter()
                .map(|&w| dist[w as usize])
                .min()
                .unwrap_or(INFINITE_DIST);
            dist[*node as usize] = plus(best, 1);
        }
        Removal::Chain { u, v, nodes, kind } => {
            let du = dist[*u as usize];
            let l = nodes.len() as u32;
            match kind {
                ChainKind::Pendant => {
                    for (j, &a) in nodes.iter().enumerate() {
                        dist[a as usize] = plus(du, j as u32 + 1);
                    }
                }
                ChainKind::Cycle => {
                    for (j, &a) in nodes.iter().enumerate() {
                        let i = j as u32 + 1;
                        dist[a as usize] = plus(du, i.min(l + 1 - i));
                    }
                }
                ChainKind::LongerParallel
                | ChainKind::IdenticalParallel
                | ChainKind::Contracted => {
                    let dv = dist[*v as usize];
                    for (j, &a) in nodes.iter().enumerate() {
                        let i = j as u32 + 1;
                        dist[a as usize] = plus(du, i).min(plus(dv, l + 1 - i));
                    }
                }
            }
        }
    }
}

/// Fills in distances of all removed vertices given distances on the
/// reduced graph, replaying `records` in reverse removal order.
///
/// `dist` is indexed by original vertex id; entries of surviving vertices
/// must already hold their reduced-graph BFS distances (which equal their
/// original-graph distances — the reductions are distance-preserving).
pub fn reconstruct_distances(records: &[Removal], dist: &mut [Dist]) {
    for rec in records.iter().rev() {
        apply_record(rec, dist);
    }
}

/// Structural depth offsets: for every removed vertex, how many hops it
/// sits beyond the surviving graph.
///
/// Replaying the records over an all-zeros distance array yields, per
/// removed vertex `y`, the extra distance `offset(y)` such that
/// `d(x, y) ≈ d(x, nearest anchor) + offset(y)` for a far-away vertex `x`.
/// Identical twins use offset 0 (`d(x, twin) = d(x, rep)` exactly), which
/// is why this does not reuse [`apply_record`] (whose `0 → 2` rule is for
/// the rep-is-the-source case).
///
/// The estimators use these offsets to de-bias their scaled views: sampled
/// BFS sources are all survivors, so raw partial sums systematically miss
/// the removed fringe's extra depth (see `brics::cumulative`).
pub fn structural_offsets(records: &[Removal], num_nodes: usize) -> Vec<Dist> {
    let mut dist = vec![0 as Dist; num_nodes];
    for rec in records.iter().rev() {
        match rec {
            Removal::Identical { node, rep } => dist[*node as usize] = dist[*rep as usize],
            _ => apply_record(rec, &mut dist),
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_copies_rep() {
        let mut d = vec![7, INFINITE_DIST];
        apply_record(&Removal::Identical { node: 1, rep: 0 }, &mut d);
        assert_eq!(d, vec![7, 7]);
    }

    #[test]
    fn identical_twin_of_the_source_sits_at_two() {
        // Source == representative: the twin is non-adjacent with a shared
        // neighbour, so its distance is exactly 2, not 0.
        let mut d = vec![0, 99];
        apply_record(&Removal::Identical { node: 1, rep: 0 }, &mut d);
        assert_eq!(d, vec![0, 2]);
        let mut d = vec![INFINITE_DIST, 5];
        apply_record(&Removal::Identical { node: 1, rep: 0 }, &mut d);
        assert_eq!(d[1], INFINITE_DIST);
    }

    #[test]
    fn redundant_takes_min_plus_one() {
        let mut d = vec![5, 3, 9, 0];
        apply_record(&Removal::Redundant { node: 3, neighbors: vec![0, 1, 2] }, &mut d);
        assert_eq!(d[3], 4);
    }

    #[test]
    fn redundant_with_unreachable_neighbors() {
        let mut d = vec![INFINITE_DIST, INFINITE_DIST, 0];
        apply_record(&Removal::Redundant { node: 2, neighbors: vec![0, 1] }, &mut d);
        assert_eq!(d[2], INFINITE_DIST);
    }

    #[test]
    fn pendant_walks_outward() {
        // u = 0 at distance 4; chain 1-2-3 hangs off it.
        let mut d = vec![4, 0, 0, 0];
        apply_record(
            &Removal::Chain { u: 0, v: 0, nodes: vec![1, 2, 3], kind: ChainKind::Pendant },
            &mut d,
        );
        assert_eq!(d, vec![4, 5, 6, 7]);
    }

    #[test]
    fn cycle_meets_in_the_middle() {
        // Anchor 0 at distance 2; 4-cycle-run 1-2-3-4 back to 0.
        let mut d = vec![2, 0, 0, 0, 0];
        apply_record(
            &Removal::Chain { u: 0, v: 0, nodes: vec![1, 2, 3, 4], kind: ChainKind::Cycle },
            &mut d,
        );
        assert_eq!(d, vec![2, 3, 4, 4, 3]);
    }

    #[test]
    fn parallel_takes_nearer_end() {
        // u = 0 at 1, v = 4 at 6, removed run 1-2-3 (l = 3).
        let mut d = vec![1, 0, 0, 0, 6];
        apply_record(
            &Removal::Chain { u: 0, v: 4, nodes: vec![1, 2, 3], kind: ChainKind::LongerParallel },
            &mut d,
        );
        // i=1: min(1+1, 6+3)=2; i=2: min(3,8)=3; i=3: min(4,7)=4
        assert_eq!(d, vec![1, 2, 3, 4, 6]);
    }

    #[test]
    fn parallel_with_closer_far_end() {
        // u = 0 at 9, v = 4 at 0.
        let mut d = vec![9, 0, 0, 0, 0];
        apply_record(
            &Removal::Chain {
                u: 0,
                v: 4,
                nodes: vec![1, 2, 3],
                kind: ChainKind::IdenticalParallel,
            },
            &mut d,
        );
        // i=1: min(10, 0+3)=3; i=2: min(11, 2)=2; i=3: min(12, 1)=1
        assert_eq!(d, vec![9, 3, 2, 1, 0]);
    }

    #[test]
    fn reverse_order_resolves_dependencies() {
        // Pass 1 removed identical node 2 with rep 1; pass 2 removed 1 as a
        // pendant hanging from 0. Reconstruction must fill 1 before 2.
        let records = vec![
            Removal::Identical { node: 2, rep: 1 },
            Removal::Chain { u: 0, v: 0, nodes: vec![1], kind: ChainKind::Pendant },
        ];
        let mut d = vec![3, 0, 0];
        reconstruct_distances(&records, &mut d);
        assert_eq!(d, vec![3, 4, 4]);
    }

    #[test]
    fn structural_offsets_measure_depth() {
        // Pendant chain 1-2-3 below anchor 0, identical twin 4 of rep 0.
        let records = vec![
            Removal::Identical { node: 4, rep: 0 },
            Removal::Chain { u: 0, v: 0, nodes: vec![1, 2, 3], kind: ChainKind::Pendant },
        ];
        let off = structural_offsets(&records, 5);
        assert_eq!(off, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn structural_offsets_resolve_dependencies() {
        // Identical twin 2 of rep 1, where 1 is itself a pendant below 0.
        let records = vec![
            Removal::Identical { node: 2, rep: 1 },
            Removal::Chain { u: 0, v: 0, nodes: vec![1], kind: ChainKind::Pendant },
        ];
        let off = structural_offsets(&records, 3);
        assert_eq!(off, vec![0, 1, 1]);
    }

    #[test]
    fn structural_offsets_parallel_take_near_side() {
        let records = vec![Removal::Chain {
            u: 0,
            v: 1,
            nodes: vec![2, 3, 4],
            kind: ChainKind::Contracted,
        }];
        let off = structural_offsets(&records, 5);
        assert_eq!(off, vec![0, 0, 1, 2, 1]);
    }

    #[test]
    fn counting_helpers() {
        let c = Removal::Chain { u: 0, v: 1, nodes: vec![5, 6], kind: ChainKind::LongerParallel };
        assert_eq!(c.removed_count(), 2);
        assert_eq!(c.removed_nodes().collect::<Vec<_>>(), vec![5, 6]);
        assert_eq!(c.anchors(), vec![0, 1]);
        let p = Removal::Chain { u: 3, v: 3, nodes: vec![4], kind: ChainKind::Pendant };
        assert_eq!(p.anchors(), vec![3]);
        let r = Removal::Redundant { node: 9, neighbors: vec![1, 2, 3] };
        assert_eq!(r.removed_count(), 1);
        assert_eq!(r.anchors(), vec![1, 2, 3]);
    }
}
