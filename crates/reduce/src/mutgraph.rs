//! A mutable adjacency-list view used while reductions are in flight.
//!
//! The reduction passes remove vertices one technique at a time, and each
//! pass must see the degrees left behind by the previous one (paper
//! Algorithm 4 applies I, then C, then R to the *running* reduced graph).
//! CSR cannot be edited in place, so passes operate on this sorted-Vec
//! adjacency structure and the pipeline converts back to CSR at the end.

use brics_graph::{CsrGraph, GraphBuilder, NodeId};

/// Mutable simple undirected graph with vertex removal.
#[derive(Clone, Debug)]
pub struct MutGraph {
    adj: Vec<Vec<NodeId>>,
    removed: Vec<bool>,
    live_edges: usize,
}

impl MutGraph {
    /// Copies a CSR graph into mutable form.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let adj = g.nodes().map(|v| g.neighbors(v).to_vec()).collect();
        Self { adj, removed: vec![false; g.num_nodes()], live_edges: g.num_edges() }
    }

    /// Number of vertices in the original id space (including removed).
    pub fn num_ids(&self) -> usize {
        self.adj.len()
    }

    /// Number of surviving (non-removed) vertices.
    pub fn num_live(&self) -> usize {
        self.removed.iter().filter(|&&r| !r).count()
    }

    /// Number of surviving edges.
    pub fn num_live_edges(&self) -> usize {
        self.live_edges
    }

    /// Whether `v` has been removed.
    #[inline]
    pub fn is_removed(&self, v: NodeId) -> bool {
        self.removed[v as usize]
    }

    /// Current degree of `v` (0 after removal).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Current sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v as usize]
    }

    /// Whether the edge `{u, v}` currently exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Removes vertex `v` and all its incident edges.
    ///
    /// # Panics
    /// Panics (debug) if `v` was already removed.
    pub fn remove_vertex(&mut self, v: NodeId) {
        debug_assert!(!self.removed[v as usize], "double removal of {v}");
        self.removed[v as usize] = true;
        let nbrs = std::mem::take(&mut self.adj[v as usize]);
        self.live_edges -= nbrs.len();
        for w in nbrs {
            let list = &mut self.adj[w as usize];
            if let Ok(pos) = list.binary_search(&v) {
                list.remove(pos);
            }
        }
    }

    /// The removal mask (indexed by original vertex id).
    pub fn removed_mask(&self) -> &[bool] {
        &self.removed
    }

    /// Iterates over every live undirected edge once, as `(u, v)`, `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(v, nbrs)| {
            nbrs.iter()
                .copied()
                .filter(move |&w| (v as NodeId) < w)
                .map(move |w| (v as NodeId, w))
        })
    }

    /// Converts back to CSR over the same id space. Removed vertices become
    /// isolated (degree 0) so original ids remain valid everywhere.
    pub fn to_csr(&self) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.num_ids(), self.live_edges);
        for (v, nbrs) in self.adj.iter().enumerate() {
            for &w in nbrs {
                if (v as NodeId) < w {
                    b.add_edge(v as NodeId, w);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::generators::cycle_graph;

    #[test]
    fn roundtrip_without_removal() {
        let g = cycle_graph(6);
        let m = MutGraph::from_csr(&g);
        assert_eq!(m.to_csr(), g);
        assert_eq!(m.num_live(), 6);
        assert_eq!(m.num_live_edges(), 6);
    }

    #[test]
    fn remove_vertex_updates_neighbors() {
        let g = cycle_graph(4);
        let mut m = MutGraph::from_csr(&g);
        m.remove_vertex(0);
        assert!(m.is_removed(0));
        assert_eq!(m.degree(0), 0);
        assert_eq!(m.degree(1), 1);
        assert_eq!(m.degree(3), 1);
        assert_eq!(m.degree(2), 2);
        assert_eq!(m.num_live(), 3);
        assert_eq!(m.num_live_edges(), 2);
        assert!(!m.has_edge(1, 0));
        assert!(m.has_edge(1, 2));
    }

    #[test]
    fn to_csr_isolates_removed() {
        let g = cycle_graph(5);
        let mut m = MutGraph::from_csr(&g);
        m.remove_vertex(2);
        let r = m.to_csr();
        assert_eq!(r.num_nodes(), 5);
        assert_eq!(r.degree(2), 0);
        assert_eq!(r.num_edges(), 3);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double removal")]
    fn double_removal_panics() {
        let mut m = MutGraph::from_csr(&cycle_graph(3));
        m.remove_vertex(1);
        m.remove_vertex(1);
    }
}
