//! The R, I and C of BRICS: structural reductions that shrink a graph
//! without disturbing any surviving shortest-path distance.
//!
//! Three techniques from the paper (§III-A–C), applied in the order of its
//! Algorithm 4:
//!
//! 1. **Identical nodes** ([`identical`]) — vertices with equal open
//!    neighbourhoods share all distances from everywhere else; every group
//!    keeps one representative.
//! 2. **Chain nodes** ([`chains`]) — maximal runs of degree-2 vertices.
//!    The four *redundant* chain types of Fig. 1 (pendant, cycle,
//!    longer-parallel, identical-parallel) are removed.
//! 3. **Redundant 3/4-degree nodes** ([`redundant`]) — vertices whose
//!    neighbourhood is dense enough that no through-shortest-path can need
//!    them.
//!
//! Every removal is logged as a [`Removal`] record; given BFS distances on
//! the reduced graph, [`reconstruct_distances`] replays the records in
//! reverse to recover the *exact* distance of every removed vertex (paper
//! Algorithms 2 and 3). The pipeline is lossless: only sampling, applied
//! later, introduces estimation error.
//!
//! # Example
//!
//! ```
//! use brics_graph::{GraphBuilder, traversal::bfs_distances};
//! use brics_reduce::{reduce, reconstruct_distances, ReductionConfig};
//!
//! // A triangle with a pendant path 2-3-4: the pendant run {3,4} and the
//! // triangle's degree-2 cycle run {0,1} are all redundant; vertex 2 remains.
//! let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
//! let r = reduce(&g, &ReductionConfig::all());
//! assert!(r.removed[3] && r.removed[4]);
//! assert_eq!(r.num_surviving(), 1);
//!
//! // BFS on the reduced graph from a surviving source + reconstruction
//! // equals BFS on the original graph.
//! let mut d = bfs_distances(&r.graph, 2);
//! reconstruct_distances(&r.records, &mut d);
//! assert_eq!(d, bfs_distances(&g, 2));
//! ```

#![warn(missing_docs)]

pub mod chains;
pub mod identical;
mod mutgraph;
pub mod pipeline;
mod records;
pub mod redundant;

pub use mutgraph::MutGraph;
pub use pipeline::{reduce, reduce_ctl, reduce_ctl_rec, ReductionConfig, ReductionResult, ReductionStats};
pub use records::{
    apply_record, reconstruct_distances, structural_offsets, ChainKind, Removal,
};
