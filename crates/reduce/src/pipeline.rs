//! The staged reduction pipeline (paper Algorithm 4).
//!
//! Applies, in order: identical-node removal (I), redundant-chain removal
//! (C), redundant 3/4-degree removal (R) — each technique individually
//! toggleable so the paper's C+R / I+C+R / Cumulative ablations (§IV-C2)
//! can be expressed — and returns the reduced graph together with the
//! removal log and Table-I-style statistics.

use crate::chains::remove_redundant_chains_ctl;
use crate::identical::remove_identical_nodes_ctl;
use crate::mutgraph::MutGraph;
use crate::records::{ChainKind, Removal};
use crate::redundant::remove_redundant_nodes;
use brics_graph::telemetry::{timed, Counter, NullRecorder, Recorder};
use brics_graph::{CsrGraph, FaultKind, FaultSite, RunControl, RunOutcome};
use serde::{Deserialize, Serialize};

/// Which reduction techniques to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionConfig {
    /// I — identical-node removal (paper §III-A).
    pub identical: bool,
    /// C — redundant-chain removal (paper §III-B).
    pub chains: bool,
    /// R — redundant 3/4-degree removal (paper §III-C).
    pub redundant: bool,
    /// Contract surviving (non-redundant) chains into weighted edges after
    /// the removal passes. Lossless (weighted BFS preserves every
    /// distance); this is what makes the chain technique pay off on road
    /// networks, whose chains are overwhelmingly non-redundant. Requires
    /// `chains`. Enabled in every preset except [`ReductionConfig::none`];
    /// disable with [`ReductionConfig::without_contraction`] for the
    /// paper-literal ablation.
    pub contract: bool,
    /// Extension (off by default / not part of the paper's one-pass
    /// Algorithm 4): repeat the C and R passes until a fixpoint, catching
    /// chains and redundant nodes exposed by earlier removals.
    pub fixpoint: bool,
}

impl ReductionConfig {
    /// No reductions at all (the random-sampling baseline's view).
    pub fn none() -> Self {
        Self { identical: false, chains: false, redundant: false, contract: false, fixpoint: false }
    }

    /// All paper techniques, single pass: the Cumulative configuration's
    /// preprocessing (I + C + R), with chain contraction.
    pub fn all() -> Self {
        Self { identical: true, chains: true, redundant: true, contract: true, fixpoint: false }
    }

    /// The paper's "C+R" ablation: chains then redundant nodes, no identical.
    pub fn cr() -> Self {
        Self { identical: false, chains: true, redundant: true, contract: true, fixpoint: false }
    }

    /// The paper's "I+C+R" ablation.
    pub fn icr() -> Self {
        Self::all()
    }

    /// Chain-only configuration (the paper's choice for road networks).
    pub fn chains_only() -> Self {
        Self { identical: false, chains: true, redundant: false, contract: true, fixpoint: false }
    }

    /// Enables fixpoint iteration on top of this configuration.
    pub fn with_fixpoint(mut self) -> Self {
        self.fixpoint = true;
        self
    }

    /// Disables chain contraction (removal-only chain handling, as in a
    /// literal reading of the paper's Algorithm 4).
    pub fn without_contraction(mut self) -> Self {
        self.contract = false;
        self
    }

    /// Whether any technique is enabled.
    pub fn any(&self) -> bool {
        self.identical || self.chains || self.redundant
    }
}

impl Default for ReductionConfig {
    fn default() -> Self {
        Self::all()
    }
}

/// Per-technique counts, in the shape of the paper's Table I columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionStats {
    /// Vertices removed as identical nodes (non-chain shaped;
    /// Table I "Identical / Nodes").
    pub identical_nodes: usize,
    /// Vertices removed as identical *chain* nodes: degree-2 twins caught by
    /// the identical pass plus Type-4 chains caught by the chain pass
    /// (Table I "Identical / Ch.Nodes").
    pub identical_chain_nodes: usize,
    /// Vertices removed as redundant 3/4-degree nodes (Table I "Redundant").
    pub redundant_nodes: usize,
    /// Vertices lying in detected chains, kept or removed (Table I "Chain
    /// Nodes" counts all chain membership).
    pub chain_nodes: usize,
    /// Vertices removed by the chain pass, *excluding* Type-4 identical
    /// chains (those are counted under `identical_chain_nodes`, mirroring
    /// Table I's column layout). The five counters
    /// `identical_nodes + identical_chain_nodes + removed_chain_nodes +
    /// contracted_chain_nodes + redundant_nodes` partition `total_removed`.
    pub removed_chain_nodes: usize,
    /// Vertices removed by contracting surviving chains into weighted edges.
    pub contracted_chain_nodes: usize,
    /// Total removed vertices across all passes.
    pub total_removed: usize,
    /// Surviving vertices.
    pub surviving_nodes: usize,
    /// Surviving edges.
    pub surviving_edges: usize,
    /// Number of fixpoint rounds executed (1 without `fixpoint`).
    pub rounds: usize,
}

/// Output of [`reduce`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReductionResult {
    /// The reduced graph over the *original* id space; removed vertices are
    /// isolated (degree 0). Keeping ids stable lets distance arrays be
    /// shared between the reduced and original graphs.
    pub graph: CsrGraph,
    /// Edge weights aligned with `graph.targets()`, present only when chain
    /// contraction produced non-unit edges. `None` means every edge has
    /// weight 1 (traverse with plain BFS); `Some` requires a weighted
    /// traversal (`brics_graph::traversal::DialBfs`).
    pub weights: Option<Vec<u32>>,
    /// `removed[v]` — whether original vertex `v` was removed.
    pub removed: Vec<bool>,
    /// Removal log in removal order. Replay in reverse to reconstruct
    /// distances (see [`crate::reconstruct_distances`]).
    pub records: Vec<Removal>,
    /// Table-I-style statistics.
    pub stats: ReductionStats,
}

impl ReductionResult {
    /// Ids of surviving vertices, ascending.
    pub fn surviving(&self) -> Vec<brics_graph::NodeId> {
        self.removed
            .iter()
            .enumerate()
            .filter(|&(_, &r)| !r)
            .map(|(v, _)| v as brics_graph::NodeId)
            .collect()
    }

    /// Number of surviving vertices.
    pub fn num_surviving(&self) -> usize {
        self.stats.surviving_nodes
    }
}

/// Runs the reduction pipeline on `g` (paper Algorithm 4 lines 1–6).
///
/// The input is expected to be simple and undirected (any [`CsrGraph`]).
/// Connectivity is *not* required, but the estimator crates assume it.
pub fn reduce(g: &CsrGraph, config: &ReductionConfig) -> ReductionResult {
    reduce_ctl(g, config, &RunControl::new()).expect("unbounded control cannot stop")
}

/// [`reduce`] under a [`RunControl`]: the control is consulted between
/// passes (and between fixpoint rounds), so a deadline or cancellation
/// stops the pipeline within one pass's worth of work. A partially-applied
/// reduction is useless to the estimators — the removal log must be
/// complete for reconstruction to be exact — so interruption returns
/// `Err(outcome)` rather than a partial result.
pub fn reduce_ctl(
    g: &CsrGraph,
    config: &ReductionConfig,
    ctl: &RunControl,
) -> Result<ReductionResult, RunOutcome> {
    reduce_ctl_rec(g, config, ctl, &NullRecorder)
}

/// [`reduce_ctl`] with a telemetry [`Recorder`]: per-rule spans
/// (`reduce.identical` / `reduce.chains` / `reduce.redundant` /
/// `reduce.contract`) plus the Table-I removal counters. The recorder only
/// observes; the reduction computed is bit-identical with [`NullRecorder`].
pub fn reduce_ctl_rec<R: Recorder>(
    g: &CsrGraph,
    config: &ReductionConfig,
    ctl: &RunControl,
    rec: &R,
) -> Result<ReductionResult, RunOutcome> {
    let check = |stage: &mut RunOutcome| -> bool {
        match ctl.should_stop() {
            Some(o) => {
                *stage = o;
                true
            }
            None => false,
        }
    };
    // `reduce.rule` failpoint, tripped at each rule-pass boundary with the
    // rule's ordinal (0 = identical, 1 = chains, 2 = redundant,
    // 3 = contract). Panic-like kinds unwind to the caller's isolation
    // wrapper; deadline-expire surfaces through the next `check`.
    let fault = |ordinal: u64| match ctl.fault_apply(FaultSite::ReduceRule, ordinal) {
        Some(FaultKind::Panic) => {
            panic!("injected worker panic (reduce.rule) at pass {ordinal}")
        }
        Some(FaultKind::IoError) => {
            panic!("injected i/o error (reduce.rule) at pass {ordinal}")
        }
        _ => {}
    };
    let mut stop = RunOutcome::Complete;
    if check(&mut stop) {
        return Err(stop);
    }
    let mut mg = MutGraph::from_csr(g);
    let mut records = Vec::new();
    let mut stats = ReductionStats::default();

    if config.identical {
        if check(&mut stop) {
            return Err(stop);
        }
        fault(0);
        let (plain, chain_shaped) =
            timed(rec, "reduce.identical", || remove_identical_nodes_ctl(&mut mg, ctl, &mut records))?;
        stats.identical_nodes += plain;
        stats.identical_chain_nodes += chain_shaped;
    }

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        let mut removed_this_round = 0usize;
        if config.chains {
            if check(&mut stop) {
                return Err(stop);
            }
            fault(1);
            let cs =
                timed(rec, "reduce.chains", || remove_redundant_chains_ctl(&mut mg, ctl, &mut records))?;
            if rounds == 1 {
                stats.chain_nodes = cs.total_chain_nodes;
            }
            stats.removed_chain_nodes += cs.removed_chain_nodes - cs.identical_chain_nodes;
            stats.identical_chain_nodes += cs.identical_chain_nodes;
            removed_this_round += cs.removed_chain_nodes;
        }
        if config.redundant {
            if check(&mut stop) {
                return Err(stop);
            }
            fault(2);
            let rs = timed(rec, "reduce.redundant", || remove_redundant_nodes(&mut mg, &mut records));
            stats.redundant_nodes += rs.removed();
            removed_this_round += rs.removed();
        }
        if !config.fixpoint || removed_this_round == 0 {
            break;
        }
    }
    stats.rounds = rounds;

    // Contraction: replace every surviving between-endpoints chain with a
    // weighted edge carrying the chain's path length (lossless; see the
    // `ChainKind::Contracted` docs). Runs after all removal passes so it
    // also catches chains exposed by the redundant pass.
    let mut contracted_edges: Vec<(brics_graph::NodeId, brics_graph::NodeId, u32)> = Vec::new();
    if config.contract && config.chains {
        if check(&mut stop) {
            return Err(stop);
        }
        fault(3);
        timed(rec, "reduce.contract", || -> Result<(), RunOutcome> {
            let between = crate::chains::find_chains_ctl(&mg, ctl)?;
            for (i, c) in between.into_iter().enumerate() {
                if i % 256 == 0 {
                    if let Some(o) = ctl.should_stop() {
                        return Err(o);
                    }
                }
                if c.shape != crate::chains::ChainShape::Between {
                    continue;
                }
                let w = c.nodes.len() as u32 + 1;
                for &x in &c.nodes {
                    mg.remove_vertex(x);
                }
                stats.contracted_chain_nodes += c.nodes.len();
                contracted_edges.push((c.u, c.v, w));
                records.push(Removal::Chain {
                    u: c.u,
                    v: c.v,
                    nodes: c.nodes,
                    kind: ChainKind::Contracted,
                });
            }
            Ok(())
        })?;
    }

    stats.total_removed = records.iter().map(Removal::removed_count).sum();
    stats.surviving_nodes = mg.num_live();

    let (graph, weights) = if contracted_edges.is_empty() {
        (mg.to_csr(), None)
    } else {
        let mut all: Vec<(brics_graph::NodeId, brics_graph::NodeId, u32)> =
            mg.edges().map(|(u, v)| (u, v, 1)).collect();
        all.extend(contracted_edges);
        let (g, w) = brics_graph::weighted::build_weighted(mg.num_ids(), &all);
        (g, Some(w))
    };
    stats.surviving_edges = graph.num_edges();
    if rec.enabled() {
        rec.add(Counter::ReduceIdenticalRemoved, stats.identical_nodes as u64);
        rec.add(Counter::ReduceIdenticalChainRemoved, stats.identical_chain_nodes as u64);
        rec.add(Counter::ReduceChainRemoved, stats.removed_chain_nodes as u64);
        rec.add(Counter::ReduceContractedRemoved, stats.contracted_chain_nodes as u64);
        rec.add(Counter::ReduceRedundantRemoved, stats.redundant_nodes as u64);
        rec.add(Counter::ReduceRounds, stats.rounds as u64);
        rec.add(Counter::ReduceSurvivingNodes, stats.surviving_nodes as u64);
        rec.add(Counter::ReduceSurvivingEdges, stats.surviving_edges as u64);
    }
    Ok(ReductionResult {
        graph,
        weights,
        removed: mg.removed_mask().to_vec(),
        records,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::reconstruct_distances;
    use brics_graph::generators::{
        caterpillar, complete_graph, cycle_graph, gnm_random_connected, lollipop, star_graph,
    };
    use brics_graph::traversal::bfs_distances;
    use brics_graph::{GraphBuilder, NodeId};

    /// End-to-end exactness oracle: (possibly weighted) BFS on the reduced
    /// graph from every surviving source + reconstruction must equal BFS on
    /// the original graph.
    fn assert_lossless(g: &CsrGraph, config: &ReductionConfig) {
        use brics_graph::traversal::DialBfs;
        let r = reduce(g, config);
        assert_eq!(r.removed.iter().filter(|&&x| x).count(), r.stats.total_removed);
        let mut dial = DialBfs::new(g.num_nodes());
        for s in 0..g.num_nodes() as NodeId {
            if r.removed[s as usize] {
                continue;
            }
            dial.run_with(&r.graph, r.weights.as_deref(), s, |_, _| {});
            let mut d = dial.distances()[..g.num_nodes()].to_vec();
            reconstruct_distances(&r.records, &mut d);
            assert_eq!(d, bfs_distances(g, s), "source {s} config {config:?}");
        }
    }

    #[test]
    fn lossless_on_structured_graphs() {
        let graphs = [star_graph(8),
            cycle_graph(9),
            complete_graph(6),
            lollipop(5, 4),
            caterpillar(6, 3),
            GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])];
        for (i, g) in graphs.iter().enumerate() {
            for config in [
                ReductionConfig::all(),
                ReductionConfig::cr(),
                ReductionConfig::chains_only(),
                ReductionConfig::all().with_fixpoint(),
            ] {
                eprintln!("graph {i} config {config:?}");
                assert_lossless(g, &config);
            }
        }
    }

    #[test]
    fn lossless_on_random_graphs() {
        for seed in 0..12 {
            let g = gnm_random_connected(40, 48 + (seed as usize % 30), seed);
            assert_lossless(&g, &ReductionConfig::all());
            assert_lossless(&g, &ReductionConfig::all().with_fixpoint());
        }
    }

    #[test]
    fn none_config_is_identity() {
        let g = lollipop(4, 3);
        let r = reduce(&g, &ReductionConfig::none());
        assert_eq!(r.graph, g);
        assert!(r.records.is_empty());
        assert_eq!(r.stats.total_removed, 0);
        assert_eq!(r.num_surviving(), 7);
    }

    #[test]
    fn star_reduces_to_two_vertices() {
        // Identical pass keeps one leaf; chain pass removes it as a pendant.
        let r = reduce(&star_graph(10), &ReductionConfig::all());
        assert_eq!(r.num_surviving(), 1);
        assert_eq!(r.stats.identical_nodes, 8);
        assert_eq!(r.stats.removed_chain_nodes, 1);
    }

    #[test]
    fn caterpillar_fixpoint_collapses_further() {
        let g = caterpillar(10, 2);
        let one = reduce(&g, &ReductionConfig::chains_only());
        let fix = reduce(&g, &ReductionConfig::chains_only().with_fixpoint());
        assert!(fix.num_surviving() <= one.num_surviving());
        assert!(fix.stats.rounds >= 1);
        assert_lossless(&g, &ReductionConfig::chains_only().with_fixpoint());
    }

    #[test]
    fn stats_are_consistent() {
        let g = gnm_random_connected(60, 80, 3);
        let r = reduce(&g, &ReductionConfig::all());
        assert_eq!(r.stats.surviving_nodes + r.stats.total_removed, g.num_nodes());
        assert_eq!(r.graph.num_edges(), r.stats.surviving_edges);
        assert_eq!(r.surviving().len(), r.stats.surviving_nodes);
        assert_eq!(
            r.stats.total_removed,
            r.stats.identical_nodes
                + r.stats.identical_chain_nodes
                + r.stats.removed_chain_nodes
                + r.stats.contracted_chain_nodes
                + r.stats.redundant_nodes
        );
    }

    #[test]
    fn contraction_collapses_grid_subdivisions() {
        // A subdivided grid (road-like structure): every subdivision vertex
        // is a non-redundant chain node; contraction must remove them all.
        use brics_graph::generators::grid_graph;
        let base = grid_graph(5, 5);
        let mut b = brics_graph::GraphBuilder::with_capacity(25, 200);
        for (next, (u, v)) in (25u32..).zip(base.edges()) {
            // subdivide each edge once: u - x - v
            b.ensure_node(next);
            b.add_edge(u, next);
            b.add_edge(next, v);
        }
        let g = b.build();
        let with = reduce(&g, &ReductionConfig::chains_only());
        let without = reduce(&g, &ReductionConfig::chains_only().without_contraction());
        assert!(with.stats.contracted_chain_nodes > 0);
        assert!(with.num_surviving() < without.num_surviving());
        // All subdivision vertices go, and the four degree-2 grid corners
        // are themselves chain nodes so they contract away too: 25 - 4.
        assert_eq!(with.num_surviving(), 21);
        assert!(with.weights.is_some());
        assert_lossless(&g, &ReductionConfig::chains_only());
    }

    #[test]
    fn contraction_lossless_on_random_graphs() {
        use brics_graph::generators::gnm_random_connected;
        for seed in 0..10 {
            // Sparse graphs (m close to n) have many surviving chains.
            let g = gnm_random_connected(50, 54, 700 + seed);
            assert_lossless(&g, &ReductionConfig::all());
            assert_lossless(&g, &ReductionConfig::all().without_contraction());
            assert_lossless(&g, &ReductionConfig::all().with_fixpoint());
        }
    }

    #[test]
    fn contracted_weights_match_chain_lengths() {
        // Two K4s joined by a 3-vertex chain → contracted edge weight 4.
        let g = brics_graph::GraphBuilder::from_edges(
            11,
            &[
                (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
                (3, 4), (4, 5), (5, 6), (6, 7),
                (7, 8), (7, 9), (7, 10), (8, 9), (8, 10), (9, 10),
            ],
        );
        let r = reduce(&g, &ReductionConfig::chains_only());
        assert_eq!(r.stats.contracted_chain_nodes, 3);
        let w = r.weights.as_ref().unwrap();
        assert_eq!(brics_graph::weighted::edge_weight(&r.graph, w, 3, 7), Some(4));
        assert_lossless(&g, &ReductionConfig::chains_only());
    }

    #[test]
    fn reduced_graph_keeps_id_space() {
        let g = star_graph(6);
        let r = reduce(&g, &ReductionConfig::all());
        assert_eq!(r.graph.num_nodes(), g.num_nodes());
        for v in 0..6 {
            if r.removed[v] {
                assert_eq!(r.graph.degree(v as NodeId), 0);
            }
        }
    }

    #[test]
    fn pure_cycle_untouched() {
        let g = cycle_graph(12);
        let r = reduce(&g, &ReductionConfig::all().with_fixpoint());
        assert_eq!(r.num_surviving(), 12);
    }

    #[test]
    fn recorded_reduction_is_identical_and_counters_reconcile() {
        use brics_graph::telemetry::{Counter, RunRecorder};
        let g = gnm_random_connected(80, 100, 9);
        let config = ReductionConfig::all().with_fixpoint();
        let plain = reduce(&g, &config);
        let rec = RunRecorder::new();
        let recorded = reduce_ctl_rec(&g, &config, &RunControl::new(), &rec).unwrap();
        assert_eq!(recorded.removed, plain.removed);
        assert_eq!(recorded.stats, plain.stats);
        assert_eq!(recorded.records, plain.records);

        // Removal counters must sum to the removed-vertex count.
        let removed_sum = rec.counter(Counter::ReduceIdenticalRemoved)
            + rec.counter(Counter::ReduceIdenticalChainRemoved)
            + rec.counter(Counter::ReduceChainRemoved)
            + rec.counter(Counter::ReduceContractedRemoved)
            + rec.counter(Counter::ReduceRedundantRemoved);
        assert_eq!(removed_sum, plain.stats.total_removed as u64);
        assert_eq!(rec.counter(Counter::ReduceRounds), plain.stats.rounds as u64);
        assert_eq!(
            rec.counter(Counter::ReduceSurvivingNodes),
            plain.stats.surviving_nodes as u64
        );
        // Per-rule spans were recorded for the enabled passes.
        let report = rec.report();
        for phase in ["reduce.identical", "reduce.chains", "reduce.redundant", "reduce.contract"] {
            assert!(
                report.phases.iter().any(|p| p.name == phase),
                "missing span {phase}"
            );
        }
    }

    #[test]
    fn ctl_interruption_aborts_the_pipeline() {
        let g = gnm_random_connected(200, 260, 7);
        // Expired deadline: no pass may start, and no partial result leaks.
        let ctl = RunControl::new().with_timeout(std::time::Duration::ZERO);
        let out = reduce_ctl(&g, &ReductionConfig::all(), &ctl).unwrap_err();
        assert_eq!(out, RunOutcome::Deadline);
        // Pre-cancelled token reports the cancellation cause.
        let ctl = RunControl::new();
        ctl.cancel_token().cancel();
        let out = reduce_ctl(&g, &ReductionConfig::all(), &ctl).unwrap_err();
        assert_eq!(out, RunOutcome::Cancelled);
        // A generous budget must be indistinguishable from the unbounded run.
        let ctl = RunControl::new().with_timeout(std::time::Duration::from_secs(600));
        let bounded = reduce_ctl(&g, &ReductionConfig::all(), &ctl).unwrap();
        let unbounded = reduce(&g, &ReductionConfig::all());
        assert_eq!(bounded.removed, unbounded.removed);
        assert_eq!(bounded.stats, unbounded.stats);
    }
}
