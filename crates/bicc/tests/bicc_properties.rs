//! Property tests for the biconnected decomposition, checked against
//! brute-force definitions on random graphs.

use brics_bicc::{biconnected_components, BlockCutTree};
use brics_graph::connectivity::connected_components;
use brics_graph::{CsrGraph, GraphBuilder, InducedSubgraph, NodeId};
use proptest::prelude::*;

fn edge_soup() -> impl Strategy<Value = CsrGraph> {
    (1usize..25).prop_flat_map(|n| {
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..3 * n)
            .prop_map(move |edges| GraphBuilder::from_edges(n, &edges))
    })
}

/// Brute-force articulation test by vertex deletion.
fn brute_is_cut(g: &CsrGraph, v: NodeId) -> bool {
    let n = g.num_nodes();
    let base = connected_components(g);
    let keep: Vec<NodeId> = (0..n as NodeId).filter(|&x| x != v).collect();
    let sub = InducedSubgraph::extract(g, &keep);
    let comps = connected_components(&sub.graph);
    let others_in_v_comp = base.sizes[base.comp[v as usize] as usize] - 1;
    let expected = if others_in_v_comp == 0 { base.count() - 1 } else { base.count() };
    comps.count() > expected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Articulation points match the deletion definition on any graph.
    #[test]
    fn articulation_matches_brute_force(g in edge_soup()) {
        let bi = biconnected_components(&g);
        for v in g.nodes() {
            prop_assert_eq!(bi.is_cut[v as usize], brute_is_cut(&g, v), "vertex {}", v);
        }
    }

    /// Block edge sets partition E; vertices are covered; two blocks share
    /// at most one vertex, and any shared vertex is a cut vertex.
    #[test]
    fn blocks_partition_and_overlap_only_at_cuts(g in edge_soup()) {
        let bi = biconnected_components(&g);
        let mut all_edges: Vec<(NodeId, NodeId)> = bi
            .blocks
            .iter()
            .flat_map(|b| b.edges.iter().map(|&(a, c)| (a.min(c), a.max(c))))
            .collect();
        all_edges.sort_unstable();
        let mut expect: Vec<(NodeId, NodeId)> = g.edges().collect();
        expect.sort_unstable();
        prop_assert_eq!(all_edges, expect);

        for (i, a) in bi.blocks.iter().enumerate() {
            for b in bi.blocks.iter().skip(i + 1) {
                let shared: Vec<NodeId> = a
                    .vertices
                    .iter()
                    .copied()
                    .filter(|v| b.vertices.contains(v))
                    .collect();
                prop_assert!(shared.len() <= 1, "blocks share {:?}", shared);
                for v in shared {
                    prop_assert!(bi.is_cut[v as usize], "shared vertex {} not a cut", v);
                }
            }
        }
    }

    /// Every block with ≥ 3 vertices is itself 2-connected (no internal
    /// articulation points), per the definition of a biconnected component.
    #[test]
    fn blocks_are_biconnected(g in edge_soup()) {
        let bi = biconnected_components(&g);
        for blk in &bi.blocks {
            if blk.vertices.len() < 3 {
                continue;
            }
            let sub = InducedSubgraph::from_edge_list(&g, &blk.vertices, &blk.edges);
            let inner = biconnected_components(&sub.graph);
            prop_assert_eq!(
                inner.num_cut_vertices(), 0,
                "block {:?} has internal cut vertices", blk.vertices
            );
            prop_assert_eq!(inner.blocks.len(), 1);
        }
    }

    /// The BCT of each connected component is a tree (|edges| = |nodes| − #components).
    #[test]
    fn bct_is_forest(g in edge_soup()) {
        let bct = BlockCutTree::build(&g);
        let nodes = bct.num_blocks() + bct.num_cut_vertices();
        let comps = {
            // Components with at least one vertex produce at least one block.
            let (order, parent) = bct.rooted_order();
            let _ = order;
            parent.iter().filter(|&&p| p == usize::MAX).count()
        };
        prop_assert_eq!(bct.num_bct_edges(), nodes - comps);
    }

    /// `blocks_of` is consistent: v appears in exactly the blocks that list it.
    #[test]
    fn blocks_of_consistency(g in edge_soup()) {
        let bct = BlockCutTree::build(&g);
        for v in g.nodes() {
            let claimed = bct.blocks_of(v);
            for &b in &claimed {
                prop_assert!(bct.block(b).vertices.contains(&v));
            }
            let actual = (0..bct.num_blocks() as u32)
                .filter(|&b| bct.block(b).vertices.contains(&v))
                .count();
            prop_assert_eq!(claimed.len(), actual, "vertex {}", v);
        }
    }
}
