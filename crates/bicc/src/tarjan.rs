//! Iterative Hopcroft–Tarjan biconnected components.
//!
//! The classic recursive formulation overflows the thread stack on the long
//! chains road networks are made of, so the DFS is fully iterative with an
//! explicit frame stack. `O(n + m)` time and space.

use brics_graph::{CsrGraph, NodeId, INVALID_NODE};
use serde::{Deserialize, Serialize};

/// One biconnected component ("block").
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Vertices of the block (each cut vertex appears in several blocks).
    pub vertices: Vec<NodeId>,
    /// The block's edges. A bridge is a block with one edge; an isolated
    /// vertex is represented as a block with one vertex and no edges.
    pub edges: Vec<(NodeId, NodeId)>,
}

impl Block {
    /// Number of vertices in the block.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the block is empty (never produced by the decomposition).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Whether the block is a single edge (a bridge of the graph).
    pub fn is_bridge(&self) -> bool {
        self.edges.len() == 1
    }
}

/// Result of the biconnectivity computation.
#[derive(Clone, Debug, Default)]
pub struct Biconnectivity {
    /// The blocks. Edge sets partition `E(G)`; singleton blocks are added
    /// for isolated vertices so the blocks also cover `V(G)`.
    pub blocks: Vec<Block>,
    /// `is_cut[v]` — whether `v` is an articulation point.
    pub is_cut: Vec<bool>,
}

impl Biconnectivity {
    /// Number of articulation points.
    pub fn num_cut_vertices(&self) -> usize {
        self.is_cut.iter().filter(|&&c| c).count()
    }

    /// Size of the largest block (vertex count), 0 if there are none.
    pub fn max_block_len(&self) -> usize {
        self.blocks.iter().map(Block::len).max().unwrap_or(0)
    }

    /// Mean block size (vertex count), 0.0 if there are none.
    pub fn avg_block_len(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(Block::len).sum::<usize>() as f64 / self.blocks.len() as f64
    }
}

/// DFS frame for the iterative traversal.
struct Frame {
    v: NodeId,
    parent: NodeId,
    /// Next index into `g.neighbors(v)` to inspect.
    next: usize,
}

/// Computes biconnected components and articulation points.
pub fn biconnected_components(g: &CsrGraph) -> Biconnectivity {
    let n = g.num_nodes();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise discovery time + 1
    let mut low = vec![0u32; n];
    let mut is_cut = vec![false; n];
    let mut blocks = Vec::new();
    let mut edge_stack: Vec<(NodeId, NodeId)> = Vec::new();
    let mut frames: Vec<Frame> = Vec::new();
    let mut time = 0u32;
    // Scratch for collecting a block's distinct vertices.
    let mut seen_mark = vec![false; n];

    for root in 0..n as NodeId {
        if disc[root as usize] != 0 {
            continue;
        }
        if g.degree(root) == 0 {
            // Isolated vertex: synthetic singleton block so blocks cover V.
            disc[root as usize] = u32::MAX;
            blocks.push(Block { vertices: vec![root], edges: Vec::new() });
            continue;
        }
        let mut root_children = 0usize;
        time += 1;
        disc[root as usize] = time;
        low[root as usize] = time;
        frames.push(Frame { v: root, parent: INVALID_NODE, next: 0 });

        while let Some(frame) = frames.last_mut() {
            let v = frame.v;
            let nbrs = g.neighbors(v);
            if frame.next < nbrs.len() {
                let w = nbrs[frame.next];
                frame.next += 1;
                if w == frame.parent {
                    continue; // simple graph: exactly one parent arc to skip
                }
                let dw = disc[w as usize];
                if dw == 0 {
                    // Tree edge.
                    edge_stack.push((v, w));
                    time += 1;
                    disc[w as usize] = time;
                    low[w as usize] = time;
                    frames.push(Frame { v: w, parent: v, next: 0 });
                } else if dw < disc[v as usize] {
                    // Back edge to an ancestor.
                    edge_stack.push((v, w));
                    low[v as usize] = low[v as usize].min(dw);
                }
                continue;
            }
            // v is finished.
            let parent = frame.parent;
            frames.pop();
            if parent == INVALID_NODE {
                break;
            }
            let p = parent as usize;
            low[p] = low[p].min(low[v as usize]);
            if low[v as usize] >= disc[p] {
                // (parent, v) closes a block.
                if parent == root {
                    root_children += 1;
                } else {
                    is_cut[p] = true;
                }
                let mut block = Block::default();
                loop {
                    let (a, b) = edge_stack.pop().expect("edge stack underflow");
                    block.edges.push((a, b));
                    for x in [a, b] {
                        if !seen_mark[x as usize] {
                            seen_mark[x as usize] = true;
                            block.vertices.push(x);
                        }
                    }
                    if (a, b) == (parent, v) {
                        break;
                    }
                }
                for &x in &block.vertices {
                    seen_mark[x as usize] = false;
                }
                blocks.push(block);
            }
        }
        if root_children >= 2 {
            is_cut[root as usize] = true;
        }
        debug_assert!(edge_stack.is_empty(), "dangling edges after root {root}");
    }
    Biconnectivity { blocks, is_cut }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::generators::{complete_graph, cycle_graph, lollipop, path_graph, star_graph};
    use brics_graph::GraphBuilder;

    fn sorted_blocks(b: &Biconnectivity) -> Vec<Vec<NodeId>> {
        let mut out: Vec<Vec<NodeId>> = b
            .blocks
            .iter()
            .map(|blk| {
                let mut v = blk.vertices.clone();
                v.sort_unstable();
                v
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn path_every_edge_is_a_block() {
        let g = path_graph(5);
        let b = biconnected_components(&g);
        assert_eq!(b.blocks.len(), 4);
        assert!(b.blocks.iter().all(Block::is_bridge));
        // Interior vertices are articulation points.
        assert_eq!(b.is_cut, vec![false, true, true, true, false]);
    }

    #[test]
    fn cycle_is_one_block_no_cuts() {
        let g = cycle_graph(8);
        let b = biconnected_components(&g);
        assert_eq!(b.blocks.len(), 1);
        assert_eq!(b.blocks[0].edges.len(), 8);
        assert_eq!(b.num_cut_vertices(), 0);
    }

    #[test]
    fn complete_is_one_block() {
        let g = complete_graph(6);
        let b = biconnected_components(&g);
        assert_eq!(b.blocks.len(), 1);
        assert_eq!(b.blocks[0].vertices.len(), 6);
        assert_eq!(b.blocks[0].edges.len(), 15);
    }

    #[test]
    fn star_centre_is_cut() {
        let g = star_graph(5);
        let b = biconnected_components(&g);
        assert_eq!(b.blocks.len(), 4);
        assert!(b.is_cut[0]);
        assert_eq!(b.num_cut_vertices(), 1);
    }

    #[test]
    fn bowtie_shares_cut_vertex() {
        // Triangles {0,1,2} and {2,3,4}.
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let b = biconnected_components(&g);
        assert_eq!(sorted_blocks(&b), vec![vec![0, 1, 2], vec![2, 3, 4]]);
        assert_eq!(b.is_cut, vec![false, false, true, false, false]);
    }

    #[test]
    fn lollipop_blocks() {
        let g = lollipop(4, 2); // K4 + path of 2
        let b = biconnected_components(&g);
        assert_eq!(b.blocks.len(), 3); // K4, and two bridge edges
        assert!(b.is_cut[0]); // clique vertex holding the tail
        assert!(b.is_cut[4]); // interior tail vertex
        assert!(!b.is_cut[5]); // tail end
        assert_eq!(b.max_block_len(), 4);
    }

    #[test]
    fn edges_partition() {
        let g = GraphBuilder::from_edges(
            7,
            &[(0, 1), (1, 2), (2, 0), (1, 3), (3, 4), (4, 5), (5, 3), (5, 6)],
        );
        let b = biconnected_components(&g);
        let total_edges: usize = b.blocks.iter().map(|blk| blk.edges.len()).sum();
        assert_eq!(total_edges, g.num_edges());
        // No edge appears in two blocks.
        let mut all: Vec<(NodeId, NodeId)> = b
            .blocks
            .iter()
            .flat_map(|blk| blk.edges.iter().map(|&(a, c)| if a < c { (a, c) } else { (c, a) }))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), g.num_edges());
    }

    #[test]
    fn isolated_vertices_get_singleton_blocks() {
        let g = GraphBuilder::from_edges(4, &[(0, 1)]);
        let b = biconnected_components(&g);
        assert_eq!(b.blocks.len(), 3);
        let singles: Vec<_> = b.blocks.iter().filter(|blk| blk.edges.is_empty()).collect();
        assert_eq!(singles.len(), 2);
    }

    #[test]
    fn disconnected_components_handled() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let b = biconnected_components(&g);
        assert_eq!(b.blocks.len(), 2);
        assert_eq!(b.num_cut_vertices(), 0);
    }

    #[test]
    fn long_chain_no_stack_overflow() {
        let g = path_graph(200_000);
        let b = biconnected_components(&g);
        assert_eq!(b.blocks.len(), 199_999);
    }

    #[test]
    fn stats_helpers() {
        let g = lollipop(5, 3);
        let b = biconnected_components(&g);
        assert_eq!(b.max_block_len(), 5);
        assert!(b.avg_block_len() > 1.0);
        assert_eq!(biconnected_components(&CsrGraph::empty()).avg_block_len(), 0.0);
    }

    use brics_graph::CsrGraph;

    /// Brute-force articulation check: v is a cut vertex iff removing it
    /// increases the number of connected components among the rest.
    fn brute_cut_vertices(g: &CsrGraph) -> Vec<bool> {
        use brics_graph::connectivity::connected_components;
        let n = g.num_nodes();
        let base = connected_components(g);
        let mut out = vec![false; n];
        for v in 0..n as NodeId {
            let keep: Vec<NodeId> = (0..n as NodeId).filter(|&x| x != v).collect();
            let sub = brics_graph::InducedSubgraph::extract(g, &keep);
            let comps = connected_components(&sub.graph);
            // Removing v removes one vertex from its component; if that
            // component splits, count rises by more than the singleton loss.
            let others_in_v_comp =
                base.sizes[base.comp[v as usize] as usize] - 1;
            let expected = if others_in_v_comp == 0 {
                base.count() - 1
            } else {
                base.count()
            };
            out[v as usize] = comps.count() > expected;
        }
        out
    }

    #[test]
    fn articulation_matches_brute_force_on_random_graphs() {
        use brics_graph::generators::gnm_random_connected;
        for seed in 0..10 {
            let g = gnm_random_connected(30, 40, seed);
            let fast = biconnected_components(&g).is_cut;
            assert_eq!(fast, brute_cut_vertices(&g), "seed {seed}");
        }
    }
}
