//! Biconnected-component decomposition and the Block-Cut Tree.
//!
//! The **B** in BRICS: the paper decomposes the reduced graph into its
//! biconnected components ("blocks") and connects them through their shared
//! cut vertices into the Block-Cut Tree (BCT, paper Fig. 2). Two facts make
//! this profitable for farness estimation (paper §III-D):
//!
//! 1. every shortest path between vertices of different blocks passes
//!    through the cut vertices on the unique BCT path between those blocks,
//!    so BFS can be confined to one block at a time; and
//! 2. the total distance contribution of an entire subtree of blocks enters
//!    a block through a single cut vertex, so cross-block contributions
//!    aggregate along the tree (paper Algorithm 6).
//!
//! # Example
//!
//! ```
//! use brics_graph::GraphBuilder;
//! use brics_bicc::BlockCutTree;
//!
//! // Two triangles sharing vertex 2 — a "bow-tie".
//! let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
//! let bct = BlockCutTree::build(&g);
//! assert_eq!(bct.num_blocks(), 2);
//! assert!(bct.is_cut_vertex(2));
//! assert_eq!(bct.cut_vertices().len(), 1);
//! ```

#![warn(missing_docs)]

mod bct;
mod tarjan;

pub use bct::{BctNode, BlockCutTree};
pub use tarjan::{biconnected_components, Biconnectivity, Block};
