//! The Block-Cut Tree (BCT).
//!
//! Nodes of the BCT are the blocks of the graph plus its cut vertices; a
//! block is adjacent to exactly the cut vertices it contains (paper Fig. 2).
//! For a connected graph the BCT is a tree; for a forest it is a forest with
//! one tree per component.

use crate::tarjan::{biconnected_components, Biconnectivity, Block};
use brics_graph::{CsrGraph, NodeId, INVALID_NODE};
use serde::{Deserialize, Serialize};

/// A node of the Block-Cut Tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BctNode {
    /// A biconnected component, by block index.
    Block(u32),
    /// A cut vertex, by index into [`BlockCutTree::cut_vertices`].
    Cut(u32),
}

/// Block-Cut Tree of a graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockCutTree {
    blocks: Vec<Block>,
    is_cut: Vec<bool>,
    /// Sorted global ids of the articulation points.
    cut_vertices: Vec<NodeId>,
    /// Global vertex id → index into `cut_vertices`, or `INVALID_NODE`.
    cut_index: Vec<NodeId>,
    /// Non-cut vertex → its unique block; `INVALID_NODE` for cut vertices.
    block_of: Vec<u32>,
    /// Cut index → blocks containing that cut vertex.
    blocks_of_cut: Vec<Vec<u32>>,
}

impl BlockCutTree {
    /// Decomposes `g` and assembles its Block-Cut Tree.
    pub fn build(g: &CsrGraph) -> Self {
        Self::build_rec(g, &brics_graph::telemetry::NullRecorder)
    }

    /// [`BlockCutTree::build`] with a telemetry
    /// [`Recorder`](brics_graph::telemetry::Recorder): records a
    /// `bct.build` span plus the block / cut-vertex counts. The recorder
    /// only observes; the tree is identical with
    /// [`NullRecorder`](brics_graph::telemetry::NullRecorder).
    pub fn build_rec<R: brics_graph::telemetry::Recorder>(g: &CsrGraph, rec: &R) -> Self {
        use brics_graph::telemetry::Counter;
        let bct = brics_graph::telemetry::timed(rec, "bct.build", || {
            Self::from_biconnectivity(g.num_nodes(), biconnected_components(g))
        });
        if rec.enabled() {
            rec.add(Counter::BctBlocks, bct.num_blocks() as u64);
            rec.add(Counter::BctCutVertices, bct.num_cut_vertices() as u64);
        }
        bct
    }

    /// Assembles the BCT from a precomputed decomposition.
    pub fn from_biconnectivity(num_nodes: usize, bi: Biconnectivity) -> Self {
        let Biconnectivity { blocks, is_cut } = bi;
        debug_assert_eq!(is_cut.len(), num_nodes);
        let cut_vertices: Vec<NodeId> = (0..num_nodes as NodeId)
            .filter(|&v| is_cut[v as usize])
            .collect();
        let mut cut_index = vec![INVALID_NODE; num_nodes];
        for (i, &c) in cut_vertices.iter().enumerate() {
            cut_index[c as usize] = i as NodeId;
        }
        let mut block_of = vec![INVALID_NODE; num_nodes];
        let mut blocks_of_cut = vec![Vec::new(); cut_vertices.len()];
        for (bi, block) in blocks.iter().enumerate() {
            for &v in &block.vertices {
                let ci = cut_index[v as usize];
                if ci == INVALID_NODE {
                    debug_assert_eq!(
                        block_of[v as usize], INVALID_NODE,
                        "non-cut vertex {v} in two blocks"
                    );
                    block_of[v as usize] = bi as u32;
                } else {
                    blocks_of_cut[ci as usize].push(bi as u32);
                }
            }
        }
        Self { blocks, is_cut, cut_vertices, cut_index, block_of, blocks_of_cut }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of cut vertices.
    pub fn num_cut_vertices(&self) -> usize {
        self.cut_vertices.len()
    }

    /// The blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// One block.
    pub fn block(&self, b: u32) -> &Block {
        &self.blocks[b as usize]
    }

    /// Sorted global ids of all cut vertices.
    pub fn cut_vertices(&self) -> &[NodeId] {
        &self.cut_vertices
    }

    /// Whether global vertex `v` is an articulation point.
    pub fn is_cut_vertex(&self, v: NodeId) -> bool {
        self.is_cut[v as usize]
    }

    /// Index of `v` in [`Self::cut_vertices`], if it is a cut vertex.
    pub fn cut_index_of(&self, v: NodeId) -> Option<u32> {
        let i = self.cut_index[v as usize];
        (i != INVALID_NODE).then_some(i)
    }

    /// The unique block of a non-cut vertex (`None` for cut vertices).
    pub fn block_of(&self, v: NodeId) -> Option<u32> {
        let b = self.block_of[v as usize];
        (b != INVALID_NODE).then_some(b)
    }

    /// All blocks containing `v` (one for non-cut vertices, several for cut
    /// vertices).
    pub fn blocks_of(&self, v: NodeId) -> Vec<u32> {
        match self.cut_index_of(v) {
            Some(ci) => self.blocks_of_cut[ci as usize].clone(),
            None => self.block_of(v).into_iter().collect(),
        }
    }

    /// Blocks containing a cut vertex, by cut index.
    pub fn blocks_of_cut(&self, ci: u32) -> &[u32] {
        &self.blocks_of_cut[ci as usize]
    }

    /// Neighbours of a BCT node (blocks ↔ cut vertices).
    pub fn bct_neighbors(&self, node: BctNode) -> Vec<BctNode> {
        match node {
            BctNode::Block(b) => self
                .blocks[b as usize]
                .vertices
                .iter()
                .filter_map(|&v| self.cut_index_of(v).map(BctNode::Cut))
                .collect(),
            BctNode::Cut(c) => self.blocks_of_cut[c as usize]
                .iter()
                .map(|&b| BctNode::Block(b))
                .collect(),
        }
    }

    /// Number of BCT edges (each block–cut incidence).
    pub fn num_bct_edges(&self) -> usize {
        self.blocks_of_cut.iter().map(Vec::len).sum()
    }

    /// Whether the BCT of a *connected* input graph forms a tree.
    pub fn is_tree(&self) -> bool {
        let nodes = self.num_blocks() + self.num_cut_vertices();
        nodes == 0 || self.num_bct_edges() == nodes - 1
    }

    /// Rooted BFS order over BCT nodes starting at `Block(0)` (or the first
    /// available node). Returns `(order, parent)` where `parent[i]` is the
    /// BCT-order index of the parent of `order[i]` (`usize::MAX` at roots).
    /// Covers every component of a forest.
    pub fn rooted_order(&self) -> (Vec<BctNode>, Vec<usize>) {
        let nb = self.num_blocks();
        let nc = self.num_cut_vertices();
        let total = nb + nc;
        let idx = |n: BctNode| match n {
            BctNode::Block(b) => b as usize,
            BctNode::Cut(c) => nb + c as usize,
        };
        let mut visited = vec![false; total];
        let mut order = Vec::with_capacity(total);
        let mut parent = Vec::with_capacity(total);
        for start in 0..nb {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            order.push(BctNode::Block(start as u32));
            parent.push(usize::MAX);
            let mut head = order.len() - 1;
            while head < order.len() {
                let cur = order[head];
                let cur_pos = head;
                head += 1;
                for nbr in self.bct_neighbors(cur) {
                    let i = idx(nbr);
                    if !visited[i] {
                        visited[i] = true;
                        order.push(nbr);
                        parent.push(cur_pos);
                    }
                }
            }
        }
        (order, parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brics_graph::generators::{cycle_graph, gnm_random_connected, lollipop, path_graph};
    use brics_graph::GraphBuilder;

    fn bowtie() -> CsrGraph {
        GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
    }

    #[test]
    fn bowtie_tree_shape() {
        let bct = BlockCutTree::build(&bowtie());
        assert_eq!(bct.num_blocks(), 2);
        assert_eq!(bct.num_cut_vertices(), 1);
        assert_eq!(bct.num_bct_edges(), 2);
        assert!(bct.is_tree());
        assert_eq!(bct.cut_vertices(), &[2]);
        assert_eq!(bct.blocks_of(2).len(), 2);
        assert_eq!(bct.blocks_of(0).len(), 1);
    }

    #[test]
    fn cycle_single_block() {
        let bct = BlockCutTree::build(&cycle_graph(5));
        assert_eq!(bct.num_blocks(), 1);
        assert_eq!(bct.num_cut_vertices(), 0);
        assert!(bct.is_tree());
        assert_eq!(bct.block_of(3), Some(0));
    }

    #[test]
    fn path_alternates_blocks_and_cuts() {
        let bct = BlockCutTree::build(&path_graph(4));
        assert_eq!(bct.num_blocks(), 3);
        assert_eq!(bct.num_cut_vertices(), 2);
        assert!(bct.is_tree());
        for v in [1, 2] {
            assert!(bct.is_cut_vertex(v));
            assert_eq!(bct.blocks_of(v).len(), 2);
        }
    }

    #[test]
    fn bct_neighbors_symmetric() {
        let bct = BlockCutTree::build(&lollipop(4, 3));
        for b in 0..bct.num_blocks() as u32 {
            for nbr in bct.bct_neighbors(BctNode::Block(b)) {
                assert!(bct.bct_neighbors(nbr).contains(&BctNode::Block(b)));
            }
        }
    }

    #[test]
    fn rooted_order_covers_everything_once() {
        let bct = BlockCutTree::build(&lollipop(5, 4));
        let (order, parent) = bct.rooted_order();
        assert_eq!(order.len(), bct.num_blocks() + bct.num_cut_vertices());
        assert_eq!(parent.len(), order.len());
        assert_eq!(parent.iter().filter(|&&p| p == usize::MAX).count(), 1);
        // Parents precede children.
        for (i, &p) in parent.iter().enumerate() {
            if p != usize::MAX {
                assert!(p < i);
            }
        }
    }

    #[test]
    fn random_graphs_form_trees() {
        for seed in 0..8 {
            let g = gnm_random_connected(60, 75, seed);
            let bct = BlockCutTree::build(&g);
            assert!(bct.is_tree(), "seed {seed}");
            // Every vertex is in at least one block.
            for v in g.nodes() {
                assert!(!bct.blocks_of(v).is_empty(), "vertex {v} missing from blocks");
            }
        }
    }

    #[test]
    fn forest_input_yields_forest() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let bct = BlockCutTree::build(&g);
        let (order, parent) = bct.rooted_order();
        assert_eq!(order.len(), bct.num_blocks() + bct.num_cut_vertices());
        assert_eq!(parent.iter().filter(|&&p| p == usize::MAX).count(), 2);
    }

    #[test]
    fn cut_index_roundtrip() {
        let bct = BlockCutTree::build(&bowtie());
        let ci = bct.cut_index_of(2).unwrap();
        assert_eq!(bct.cut_vertices()[ci as usize], 2);
        assert_eq!(bct.cut_index_of(0), None);
        assert_eq!(bct.block_of(2), None);
    }
}
