//! Telemetry is observe-only: attaching a `RunRecorder` must never change
//! a result. Every assertion here compares a recorded run against an
//! unrecorded one **bit for bit** — raw sums, scaled views (`f64` bits),
//! sampled masks, coverage and source counts — across all methods, kernel
//! configs and interrupted runs. The recorded run additionally has its
//! headline counters cross-checked against the estimate it produced, so a
//! recorder that lies (or perturbs) fails here too.

mod common;

use brics::RunRecorder;
use brics::{BricsEstimator, ExecutionContext, FarnessEstimate, Method, SampleSize};
use brics_graph::generators::{ClassParams, GraphClass};
use brics_graph::telemetry::memory::{AllocStats, ShardedCounters, NUM_SHARDS};
use brics_graph::telemetry::Counter;
use brics_graph::traversal::{Kernel, KernelConfig};
use brics_graph::{RunControl, RunOutcome};
use proptest::prelude::*;

const METHODS: [Method; 4] =
    [Method::RandomSampling, Method::CR, Method::ICR, Method::Cumulative];

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn assert_identical(a: &FarnessEstimate, b: &FarnessEstimate, what: &str) {
    assert_eq!(a.raw(), b.raw(), "{what}: raw");
    assert_eq!(bits(a.scaled()), bits(b.scaled()), "{what}: scaled bits");
    assert_eq!(a.sampled_mask(), b.sampled_mask(), "{what}: sampled mask");
    assert_eq!(a.coverage(), b.coverage(), "{what}: coverage");
    assert_eq!(a.num_sources(), b.num_sources(), "{what}: num_sources");
    assert_eq!(a.outcome(), b.outcome(), "{what}: outcome");
}

#[test]
fn recorded_estimates_are_bit_identical_across_methods_and_kernels() {
    for class in [GraphClass::Web, GraphClass::Road] {
        let g = class.generate(ClassParams::new(600, 21));
        for method in METHODS {
            for kernel in [Kernel::TopDown, Kernel::Auto, Kernel::MsBfs] {
                let est = BricsEstimator::new(method)
                    .sample(SampleSize::Fraction(0.3))
                    .seed(11)
                    .kernel(KernelConfig::new(kernel));
                let plain = est.run_in(&g, &ExecutionContext::new()).unwrap();
                let rec = RunRecorder::new();
                let ctx = ExecutionContext::new().with_recorder(&rec);
                let recorded = est.run_in(&g, &ctx).unwrap();
                let what = format!("{class:?}/{}/{kernel:?}", method.name());
                assert_identical(&plain, &recorded, &what);
                // Honesty: the recorder's per-source BFS count is the
                // estimate's own source count, and the run left spans.
                assert_eq!(
                    rec.counter(Counter::BfsSources),
                    recorded.num_sources() as u64,
                    "{what}: bfs_sources counter"
                );
                let report = rec.report();
                assert!(!report.phases.is_empty(), "{what}: no phase spans");
                assert!(report.derived.elapsed_seconds > 0.0, "{what}: elapsed");
                // A fault-free run must not leave any trace in the
                // robustness fields: no failpoint audits, no retries, no
                // ladder path — the additive v2 fields stay at their
                // empty defaults.
                assert!(report.faults_injected.is_empty(), "{what}: phantom faults");
                assert_eq!(report.retries, 0, "{what}: phantom retries");
                assert!(report.degradation_path.is_empty(), "{what}: phantom ladder");
                assert_eq!(
                    report.counters["faults_injected_total"], 0,
                    "{what}: phantom fault counter"
                );
                assert_eq!(report.counters["sources_quarantined"], 0, "{what}: quarantine");
                // The engine split is visible: every recorded estimation
                // carries an `estimate` span, and the prepare-stage methods
                // a `prepare` span wrapping their single reduction.
                assert!(
                    report.phases.iter().any(|p| p.name == "estimate"),
                    "{what}: no estimate span"
                );
                if method != Method::RandomSampling {
                    let prepare =
                        report.phases.iter().find(|p| p.name == "prepare");
                    assert!(prepare.is_some(), "{what}: no prepare span");
                    let reduce = report.phases.iter().find(|p| p.name == "reduce").unwrap();
                    assert_eq!(reduce.count, 1, "{what}: reduce must run once");
                }
            }
        }
    }
}

#[test]
fn recorded_interrupted_runs_match_unrecorded_ones() {
    let g = GraphClass::Social.generate(ClassParams::new(600, 4));
    for method in METHODS {
        // An already-expired deadline stops both runs at the same
        // deterministic point (zero completed sources), so the partial
        // results must still be bit-identical.
        let est = BricsEstimator::new(method).sample(SampleSize::Fraction(0.4)).seed(3);
        let deadline = || {
            ExecutionContext::new()
                .with_control(RunControl::new().with_timeout(std::time::Duration::ZERO))
        };
        let plain = est.run_in(&g, &deadline()).unwrap();
        let rec = RunRecorder::new();
        let recorded = est.run_in(&g, &deadline().with_recorder(&rec)).unwrap();
        assert!(plain.is_partial(), "{}: deadline must interrupt", method.name());
        assert_identical(&plain, &recorded, method.name());
        assert!(
            rec.counter(Counter::DeadlineHits) > 0,
            "{}: deadline hit not recorded",
            method.name()
        );

        // Pre-cancelled control: same story, different interruption cause.
        let cancelled = || {
            let ctl = RunControl::new();
            ctl.cancel_token().cancel();
            ExecutionContext::new().with_control(ctl)
        };
        let plain = est.run_in(&g, &cancelled()).unwrap();
        let rec = RunRecorder::new();
        let recorded = est.run_in(&g, &cancelled().with_recorder(&rec)).unwrap();
        assert_eq!(plain.outcome(), RunOutcome::Cancelled);
        assert_identical(&plain, &recorded, method.name());
        assert!(
            rec.counter(Counter::Cancellations) > 0,
            "{}: cancellation not recorded",
            method.name()
        );
    }
}

#[test]
fn recorded_exact_farness_and_topk_are_bit_identical() {
    let g = GraphClass::Community.generate(ClassParams::new(400, 8));
    let plain = brics::exact_farness_in(&g, &ExecutionContext::new()).unwrap();
    let rec = RunRecorder::new();
    let ctx = ExecutionContext::new().with_recorder(&rec);
    let recorded = brics::exact_farness_in(&g, &ctx).unwrap();
    assert_eq!(plain, recorded);
    assert_eq!(rec.counter(Counter::BfsSources), g.num_nodes() as u64);

    let est = BricsEstimator::new(Method::Cumulative).sample(SampleSize::Fraction(0.3)).seed(7);
    let plain = brics::topk::top_k_closeness(&g, 10, &est).unwrap();
    let rec = RunRecorder::new();
    let ctx = ExecutionContext::new().with_recorder(&rec);
    let recorded = brics::topk::top_k_closeness_in(&g, 10, &est, &ctx).unwrap();
    assert_eq!(plain.ranked, recorded.ranked);
    assert_eq!(plain.verified_with_bfs, recorded.verified_with_bfs);
    assert_eq!(plain.pruned, recorded.pruned);
    // Estimation sources plus one BFS per verification, nothing else.
    assert!(rec.counter(Counter::BfsSources) >= recorded.verified_with_bfs as u64);
}

#[test]
fn traced_estimates_stay_bit_identical_and_summarize_latencies() {
    use brics_graph::telemetry::Metric;
    let g = GraphClass::Web.generate(ClassParams::new(500, 9));
    for method in METHODS {
        for kernel in [Kernel::TopDown, Kernel::Auto, Kernel::MsBfs] {
            let est = BricsEstimator::new(method)
                .sample(SampleSize::Fraction(0.3))
                .seed(5)
                .kernel(KernelConfig::new(kernel));
            let plain = est.run_in(&g, &ExecutionContext::new()).unwrap();
            // The heaviest recorder there is: histograms, spans AND the
            // timestamped trace buffer. Still observe-only.
            let rec = RunRecorder::with_trace();
            let ctx = ExecutionContext::new().with_recorder(&rec);
            let recorded = est.run_in(&g, &ctx).unwrap();
            let what = format!("{}/{kernel:?} traced", method.name());
            assert_identical(&plain, &recorded, &what);

            // Every method leaves BFS latency observations with ordered
            // quantiles, surfaced in the v2 report. Per-source runs time
            // each source (`source_bfs_ns`); batched MS-BFS runs time each
            // level sweep (`sweep_ns`) instead — whichever engines ran,
            // at least one family must be populated and well-ordered.
            let per_source = rec.histogram(Metric::SourceBfsNanos);
            let per_sweep = rec.histogram(Metric::SweepNanos);
            assert!(
                per_source.count > 0 || per_sweep.count > 0,
                "{what}: no latency observations"
            );
            let metric_name =
                if per_source.count > 0 { "source_bfs_ns" } else { "sweep_ns" };
            let report = rec.report();
            let s = report
                .histograms
                .iter()
                .find(|h| h.metric == metric_name)
                .unwrap_or_else(|| panic!("{what}: no {metric_name} summary"));
            assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max, "{what}: quantile order");

            // The trace nests: per-source (or, batched, per-sweep) spans
            // sit inside the estimate span.
            let events = rec.trace_events();
            let estimate = events
                .iter()
                .find(|e| e.name == "estimate")
                .unwrap_or_else(|| panic!("{what}: no estimate trace event"));
            let est_end = estimate.start_ns + estimate.dur_ns;
            let nested = events
                .iter()
                .filter(|e| e.name == "bfs.source" || e.name == "bfs.sweep")
                .filter(|e| {
                    e.start_ns >= estimate.start_ns && e.start_ns + e.dur_ns <= est_end
                })
                .count();
            assert!(nested > 0, "{what}: no bfs spans nested in estimate");
        }
    }
}

#[test]
fn traced_interrupted_runs_match_unrecorded_ones() {
    let g = GraphClass::Social.generate(ClassParams::new(600, 4));
    for method in METHODS {
        let est = BricsEstimator::new(method).sample(SampleSize::Fraction(0.4)).seed(3);
        let deadline = || {
            ExecutionContext::new()
                .with_control(RunControl::new().with_timeout(std::time::Duration::ZERO))
        };
        let plain = est.run_in(&g, &deadline()).unwrap();
        let rec = RunRecorder::with_trace();
        let recorded = est.run_in(&g, &deadline().with_recorder(&rec)).unwrap();
        assert!(plain.is_partial(), "{}: deadline must interrupt", method.name());
        assert_identical(&plain, &recorded, &format!("{} traced", method.name()));
        // The interrupted run still produces a serializable v2 report and a
        // well-formed (possibly empty) trace.
        let report = rec.report();
        assert_eq!(report.schema, brics::RunReport::SCHEMA);
        assert!(report.counters["deadline_hits"] > 0);
        let json = rec.chrome_trace_json();
        assert!(json.trim_start().starts_with('['), "{}: trace json", method.name());
        assert!(json.trim_end().ends_with(']'), "{}: trace json", method.name());
    }
}

/// This binary runs on the **system** allocator (no `#[global_allocator]`
/// here); the `memory_tracking` binary runs the same computation with the
/// tracking allocator installed. Both must match the pinned constant, which
/// proves the tracker changes no result — the memory ledger is observe-only
/// in exactly the same sense the recorder is.
#[test]
fn reference_fingerprint_matches_without_tracking_allocator() {
    assert!(
        !brics_graph::telemetry::memory::tracking_active(),
        "this suite must stay uninstrumented — move allocator tests to memory_tracking"
    );
    assert_eq!(common::reference_fingerprint(), common::REFERENCE_FINGERPRINT);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sharding is an implementation detail of the allocation ledger:
    /// scattering any interleaving of alloc/free events across the shards
    /// (by arbitrary shard index, as the pointer hash would) must merge to
    /// exactly the totals of funnelling every event through one shard.
    #[test]
    fn shard_merge_equals_single_shard(
        events in proptest::collection::vec(
            (0usize..NUM_SHARDS, 1u64..1 << 20, any::<bool>()),
            0..200,
        )
    ) {
        let sharded = ShardedCounters::new();
        let single = ShardedCounters::new();
        let mut live: u64 = 0;
        for &(shard, bytes, is_alloc) in &events {
            // Frees only debit what is actually live, mirroring real
            // alloc/dealloc pairing.
            if is_alloc {
                sharded.record_alloc_in(shard, bytes);
                single.record_alloc_in(0, bytes);
                live += bytes;
            } else {
                let freed = bytes.min(live);
                if freed > 0 {
                    sharded.record_free_in(shard, freed);
                    single.record_free_in(0, freed);
                    live -= freed;
                }
            }
        }
        let a: AllocStats = sharded.merged();
        let b: AllocStats = single.merged();
        prop_assert_eq!(a.allocated_bytes, b.allocated_bytes);
        prop_assert_eq!(a.freed_bytes, b.freed_bytes);
        prop_assert_eq!(a.allocations, b.allocations);
        prop_assert_eq!(a.live_bytes(), live);
    }
}
