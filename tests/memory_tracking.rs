//! The tracking allocator under load: this binary installs
//! [`brics_graph::telemetry::TrackingAllocator`] as the global allocator
//! (the only test binary that does — the others deliberately run on the
//! system allocator) and pins the ledger's contract:
//!
//! * results are bit-identical to the uninstrumented binaries
//!   (fingerprint shared with `telemetry_invariance`),
//! * the budget planner's figures are genuine upper bounds on the
//!   observed per-span heap footprint for every method and kernel,
//! * the v3 report's memory block is populated and internally consistent,
//! * live-growth policing trips [`RunOutcome::MemoryLimit`] once a
//!   budgeted admission has armed the baseline.
//!
//! Tests that assert on process-global live/peak figures serialize on
//! [`MEM_LOCK`] so one test's transient allocations don't inflate another's
//! observed span peaks.

mod common;

use std::sync::Mutex;

use brics::{BricsEstimator, ExecutionContext, MemoryPlan, Method, RunRecorder, SampleSize};
use brics_graph::generators::{ClassParams, GraphClass};
use brics_graph::telemetry::memory;
use brics_graph::{RunControl, RunOutcome};

#[global_allocator]
static ALLOC: brics_graph::telemetry::TrackingAllocator =
    brics_graph::telemetry::TrackingAllocator;

/// Serializes tests whose assertions read the process-global ledger.
static MEM_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn tracking_allocator_reports_live_and_peak() {
    let _guard = MEM_LOCK.lock().unwrap();
    assert!(memory::tracking_active(), "global allocator not registered");
    let before = memory::live_bytes();
    let block = vec![0u8; 1 << 20];
    let during = memory::live_bytes();
    assert!(
        during >= before + (1 << 20),
        "1 MiB allocation invisible to the ledger: {before} -> {during}"
    );
    assert!(memory::peak_bytes() >= during, "peak below live");
    drop(block);
    assert!(memory::live_bytes() < during, "free not debited");
    let stats = memory::stats();
    assert!(stats.allocations > 0);
    assert_eq!(stats.live_bytes(), stats.allocated_bytes - stats.freed_bytes);
}

/// The other half of this pin lives in `telemetry_invariance` (no
/// allocator installed): both binaries must agree with the constant, so
/// the tracker provably does not perturb results.
#[test]
fn results_are_bit_identical_with_tracker_installed() {
    assert_eq!(
        common::reference_fingerprint(),
        common::REFERENCE_FINGERPRINT,
        "tracking allocator changed computed farness"
    );
}

#[test]
fn planned_bytes_bound_observed_span_peaks() {
    let _guard = MEM_LOCK.lock().unwrap();
    let g = GraphClass::Social.generate(ClassParams::new(700, 13));
    let ctx_probe = ExecutionContext::new();
    let plan = MemoryPlan::compute(g.num_nodes(), ctx_probe.thread_count());
    let cases = [
        (Method::RandomSampling, plan.accumulate_bytes),
        (Method::CR, plan.accumulate_bytes),
        (Method::ICR, plan.accumulate_bytes),
        (Method::Cumulative, plan.cumulative_bytes),
    ];
    for (method, planned) in cases {
        let rec = RunRecorder::new();
        let ctx = ExecutionContext::new().with_recorder(&rec);
        let est =
            BricsEstimator::new(method).sample(SampleSize::Fraction(0.4)).seed(19);
        est.run_in(&g, &ctx).unwrap();
        let mut report = rec.report();
        report.stamp_planned_bytes(planned);
        let mem = &report.memory;
        assert!(mem.tracking, "{}: tracking flag off", method.name());
        assert!(
            mem.observed_peak_bytes <= planned,
            "{}: observed span peak {} exceeds planned {planned} — \
             budget.rs constants no longer dominate this kernel",
            method.name(),
            mem.observed_peak_bytes,
        );
        let accuracy = mem.plan_accuracy.expect("stamped plan must yield accuracy");
        assert!(
            (0.0..=1.0).contains(&accuracy),
            "{}: plan accuracy {accuracy} out of [0, 1]",
            method.name()
        );
    }

    // Exact sweeps and top-k verification go through their own planners.
    let rec = RunRecorder::new();
    let ctx = ExecutionContext::new().with_recorder(&rec);
    brics::exact_farness_in(&g, &ctx).unwrap();
    let mut report = rec.report();
    report.stamp_planned_bytes(plan.exact_bytes);
    assert!(
        report.memory.observed_peak_bytes <= plan.exact_bytes,
        "exact: observed {} > planned {}",
        report.memory.observed_peak_bytes,
        plan.exact_bytes
    );

    let rec = RunRecorder::new();
    let ctx = ExecutionContext::new().with_recorder(&rec);
    let est = BricsEstimator::new(Method::Cumulative)
        .sample(SampleSize::Fraction(0.4))
        .seed(19);
    brics::topk::top_k_closeness_in(&g, 10, &est, &ctx).unwrap();
    let mut report = rec.report();
    report.stamp_planned_bytes(plan.cumulative_bytes);
    assert!(
        report.memory.observed_peak_bytes <= plan.cumulative_bytes,
        "topk: observed {} > planned {} (verify span included)",
        report.memory.observed_peak_bytes,
        plan.cumulative_bytes
    );
}

#[test]
fn report_memory_block_is_populated_and_consistent() {
    let _guard = MEM_LOCK.lock().unwrap();
    let g = GraphClass::Web.generate(ClassParams::new(500, 5));
    let rec = RunRecorder::new();
    let ctx = ExecutionContext::new().with_recorder(&rec);
    BricsEstimator::new(Method::Cumulative)
        .sample(SampleSize::Fraction(0.3))
        .seed(2)
        .run_in(&g, &ctx)
        .unwrap();
    let report = rec.report();
    assert_eq!(report.schema, brics::RunReport::SCHEMA);
    let mem = &report.memory;
    assert!(mem.tracking);
    assert!(mem.live_bytes > 0, "nothing live at snapshot time?");
    assert!(mem.process_peak_bytes >= mem.live_bytes, "peak below live");
    assert!(mem.process_peak_bytes >= mem.observed_peak_bytes);
    assert!(mem.allocations > 0);
    // Unstamped report: no plan, no accuracy — but spans still carry
    // their envelopes.
    assert_eq!(mem.planned_bytes, 0);
    assert!(mem.plan_accuracy.is_none());
    let estimate =
        report.phases.iter().find(|p| p.name == "estimate").expect("estimate span");
    assert!(
        estimate.mem_peak_bytes >= estimate.mem_open_bytes,
        "span peak below its opening level"
    );
    assert_eq!(
        estimate.mem_footprint_bytes,
        estimate.mem_peak_bytes - estimate.mem_open_bytes,
    );
}

#[test]
fn live_growth_past_budget_trips_memory_limit() {
    let _guard = MEM_LOCK.lock().unwrap();
    let ctl = RunControl::new().with_memory_budget_mb(1);
    // Budget configured but baseline not yet armed: growth is not policed.
    assert_eq!(ctl.should_stop(), None);
    let _pre = vec![1u8; 4 << 20];
    assert_eq!(ctl.should_stop(), None, "must not police before admission");

    // A successful small admission arms the baseline at the current level…
    ctl.admit_memory(64 * 1024).expect("64 KiB fits a 1 MiB budget");
    assert_eq!(ctl.should_stop(), None, "no growth yet");

    // …after which exceeding the budget in *live growth* trips the stop.
    // 32 MiB against a 1 MiB budget leaves generous margin for concurrent
    // test-harness allocations shifting the baseline.
    let hog = vec![7u8; 32 << 20];
    assert_eq!(ctl.should_stop(), Some(RunOutcome::MemoryLimit));
    assert!(RunOutcome::MemoryLimit.is_interrupted());

    // Freeing the hog drops live bytes back under the budget: the stop
    // condition is a live measurement, not a latch.
    drop(hog);
    assert_eq!(ctl.should_stop(), None, "stop must clear when memory is freed");
}
