//! Large-scale smoke tests — `#[ignore]`d by default (minutes of CPU);
//! run with `cargo test --release --test large_scale -- --ignored`.
//!
//! These exercise the estimators at the paper's dataset scale (10⁵–10⁶
//! vertices) to catch stack overflows, quadratic blowups and overflow bugs
//! that small tests cannot.

use brics::{BricsEstimator, Method, SampleSize};
use brics_graph::generators::{ClassParams, GraphClass};

fn run_class(class: GraphClass, n: usize) {
    let g = class.generate(ClassParams::new(n, 99));
    assert!(g.num_nodes() >= n / 2);
    for method in [Method::RandomSampling, Method::ICR, Method::Cumulative] {
        let est = BricsEstimator::new(method)
            .sample(SampleSize::Fraction(0.02))
            .seed(3)
            .run(&g)
            .unwrap_or_else(|e| panic!("{class:?}/{}: {e}", method.name()));
        assert_eq!(est.len(), g.num_nodes());
        assert!(est.num_sources() > 0);
        // Farness values fit comfortably in u64 and are non-trivial.
        let max = est.raw().iter().max().copied().unwrap();
        assert!(max > 0 && max < u64::MAX / 4);
    }
}

#[test]
#[ignore = "minutes of CPU; run with --ignored"]
fn web_at_paper_scale() {
    run_class(GraphClass::Web, 325_000); // web-NotreDame's size
}

#[test]
#[ignore = "minutes of CPU; run with --ignored"]
fn road_at_paper_scale() {
    run_class(GraphClass::Road, 114_000); // osm-luxembourg's size
}

#[test]
#[ignore = "minutes of CPU; run with --ignored"]
fn social_at_paper_scale() {
    run_class(GraphClass::Social, 131_000); // soc-douban's size
}

#[test]
#[ignore = "minutes of CPU; run with --ignored"]
fn deep_chain_no_stack_overflow() {
    // A single 500k-vertex path: the worst case for any recursive DFS/BFS.
    let g = brics_graph::generators::path_graph(500_000);
    let est = BricsEstimator::new(Method::Cumulative)
        .sample(SampleSize::Count(4))
        .seed(0)
        .run(&g)
        .unwrap();
    assert_eq!(est.len(), 500_000);
}
