//! Determinism: every estimator is bit-identical for a fixed (graph, seed)
//! pair, regardless of rayon's scheduling — farness sums are accumulated
//! with order-independent integer addition, so parallelism must not leak
//! into results.

use brics::{BricsEstimator, Method, SampleSize};
use brics_graph::generators::{ClassParams, GraphClass};

#[test]
fn all_methods_deterministic_across_runs() {
    for class in GraphClass::ALL {
        let g = class.generate(ClassParams::new(900, 77));
        for method in [Method::RandomSampling, Method::CR, Method::ICR, Method::Cumulative] {
            let run = || {
                BricsEstimator::new(method)
                    .sample(SampleSize::Fraction(0.35))
                    .seed(123)
                    .run(&g)
                    .unwrap()
            };
            let a = run();
            let b = run();
            assert_eq!(a.raw(), b.raw(), "{class:?}/{}", method.name());
            assert_eq!(a.sampled_mask(), b.sampled_mask(), "{class:?}/{}", method.name());
            assert_eq!(a.num_sources(), b.num_sources());
            // Scaled views are pure functions of raw + structure.
            assert_eq!(a.scaled(), b.scaled());
        }
    }
}

#[test]
fn different_seeds_choose_different_sources() {
    let g = GraphClass::Social.generate(ClassParams::new(900, 5));
    let run = |seed| {
        BricsEstimator::new(Method::RandomSampling)
            .sample(SampleSize::Fraction(0.3))
            .seed(seed)
            .run(&g)
            .unwrap()
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a.sampled_mask(), b.sampled_mask());
}

#[test]
fn thread_pool_size_does_not_change_results() {
    // Run the same estimation inside a 1-thread and a 4-thread pool.
    let g = GraphClass::Web.generate(ClassParams::new(700, 3));
    let compute = || {
        BricsEstimator::new(Method::Cumulative)
            .sample(SampleSize::Fraction(0.5))
            .seed(9)
            .run(&g)
            .unwrap()
            .raw()
            .to_vec()
    };
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(compute);
    let multi = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap()
        .install(compute);
    assert_eq!(single, multi);
}
