//! Cross-metric invariants: farness, eccentricity, harmonic and
//! betweenness centrality constrain each other; these tests wire the
//! workspace's metrics together and check the textbook inequalities on
//! random and structured graphs.

use brics::betweenness::exact_betweenness;
use brics::harmonic::exact_harmonic;
use brics::{exact_farness, BricsEstimator, Method, SampleSize};
use brics_bicc::BlockCutTree;
use brics_graph::eccentricity::exact_eccentricities;
use brics_graph::generators::{gnm_random_connected, ClassParams, GraphClass};
use brics_graph::CsrGraph;

fn graphs() -> Vec<CsrGraph> {
    let mut gs: Vec<CsrGraph> = (0..5).map(|s| gnm_random_connected(60, 90, s)).collect();
    for class in GraphClass::ALL {
        gs.push(class.generate(ClassParams::new(250, 11)));
    }
    gs
}

/// `ecc(v) ≤ farness(v) ≤ (n−1)·ecc(v)` on every connected graph.
#[test]
fn farness_bracketed_by_eccentricity() {
    for g in graphs() {
        let n = g.num_nodes() as u64;
        let far = exact_farness(&g).unwrap();
        let ecc = exact_eccentricities(&g);
        for v in 0..g.num_nodes() {
            assert!(far[v] >= ecc[v] as u64, "v {v}");
            assert!(far[v] <= (n - 1) * ecc[v] as u64, "v {v}");
        }
    }
}

/// Degree-aware lower bound: `farness(v) ≥ deg(v) + 2·(n−1−deg(v))`.
#[test]
fn farness_degree_lower_bound() {
    for g in graphs() {
        let n = g.num_nodes() as u64;
        let far = exact_farness(&g).unwrap();
        for v in 0..g.num_nodes() as u32 {
            let deg = g.degree(v) as u64;
            assert!(far[v as usize] >= deg + 2 * (n - 1 - deg), "v {v}");
        }
    }
}

/// Harmonic and closeness agree on the reciprocal relationship at the
/// extremes: the farness-minimal vertex has harmonic centrality at least
/// as high as the farness-maximal vertex's.
#[test]
fn harmonic_consistent_with_farness_extremes() {
    for g in graphs() {
        let far = exact_farness(&g).unwrap();
        let har = exact_harmonic(&g);
        let most = (0..far.len()).min_by_key(|&v| far[v]).unwrap();
        let least = (0..far.len()).max_by_key(|&v| far[v]).unwrap();
        assert!(
            har[most] >= har[least] - 1e-9,
            "harmonic({most})={} < harmonic({least})={}",
            har[most],
            har[least]
        );
    }
}

/// By Jensen/AM–HM: `harmonic(v) ≥ (n−1)² / farness(v)`.
#[test]
fn harmonic_am_hm_inequality() {
    for g in graphs() {
        let n = g.num_nodes() as f64;
        let far = exact_farness(&g).unwrap();
        let har = exact_harmonic(&g);
        for v in 0..g.num_nodes() {
            let bound = (n - 1.0) * (n - 1.0) / far[v] as f64;
            assert!(har[v] >= bound - 1e-6, "v {v}: {} < {bound}", har[v]);
        }
    }
}

/// Every internal cut vertex has strictly positive betweenness, and every
/// degree-1 vertex has zero.
#[test]
fn betweenness_respects_structure() {
    for g in graphs() {
        let b = exact_betweenness(&g);
        let bct = BlockCutTree::build(&g);
        for v in 0..g.num_nodes() as u32 {
            if bct.is_cut_vertex(v) {
                assert!(b[v as usize] > 0.0, "cut vertex {v} has zero betweenness");
            }
            if g.degree(v) == 1 {
                assert!(b[v as usize].abs() < 1e-9, "leaf {v} has betweenness");
            }
        }
    }
}

/// Total betweenness mass equals the total number of interior slots on
/// shortest paths: Σ_v B(v) = Σ_{pairs} (d(s,t) − 1).
#[test]
fn betweenness_mass_conservation() {
    for g in graphs().into_iter().take(5) {
        let b = exact_betweenness(&g);
        let far = exact_farness(&g).unwrap();
        let total_distance: u64 = far.iter().sum::<u64>() / 2; // pairs once
        let n_pairs = (g.num_nodes() * (g.num_nodes() - 1) / 2) as u64;
        let expect = (total_distance - n_pairs) as f64;
        let got: f64 = b.iter().sum();
        assert!(
            (got - expect).abs() < 1e-3 * expect.max(1.0),
            "mass {got} vs {expect}"
        );
    }
}

/// The exact top-k search built on the BRICS estimate finds the true
/// 1-median on every class. (Note: the *raw* estimate's argmin alone can
/// favour a removed vertex — its partial sum omits same-home removed
/// mass even at a 100 % rate — which is precisely why `brics::topk`
/// verifies candidates with true BFS before ranking.)
#[test]
fn estimator_finds_the_median_at_full_rate() {
    for class in GraphClass::ALL {
        let g = class.generate(ClassParams::new(300, 5));
        let far = exact_farness(&g).unwrap();
        let est = BricsEstimator::new(Method::Cumulative)
            .sample(SampleSize::Fraction(1.0))
            .seed(1)
            .run(&g)
            .unwrap();
        let true_median = (0..far.len() as u32).min_by_key(|&v| (far[v as usize], v)).unwrap();
        // The true median is a survivor (centres never reduce away on these
        // classes) and so is ranked exactly.
        assert_eq!(
            est.raw()[true_median as usize],
            far[true_median as usize],
            "{class:?}"
        );
        let top = brics::topk::top_k_from_estimate(&g, 1, &est);
        assert_eq!(top.ranked[0], (true_median, far[true_median as usize]), "{class:?}");
    }
}
