//! Property-based equivalence of the pruned top-k verification scan
//! (BFS-cut against the running k-th best) with the full-sweep fallback:
//! `ranked` must be bit-identical across methods × kernels × seeds, and
//! both must equal the brute-force ranking — on the flat scan and through
//! a prepared artifact's reduced-graph verification.

use brics::{
    exact_farness, BricsEstimator, ExecutionContext, Kernel, KernelConfig, Method,
    PrepareConfig, PreparedGraph, ReductionConfig, SampleSize,
};
use brics_graph::{CsrGraph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// Strategy: connected graph with `n ∈ [2, 40]` vertices — a random
/// spanning tree plus a random set of extra edges (possibly none, so trees,
/// and possibly many, so dense blocks).
fn connected_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..40).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0usize..usize::MAX, n - 1);
        let extra = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..2 * n);
        (Just(n), tree, extra).prop_map(|(n, parents, extra)| {
            let mut b = GraphBuilder::new(n);
            for (i, p) in parents.iter().enumerate() {
                let child = (i + 1) as NodeId;
                b.add_edge(child, (p % (i + 1)) as NodeId);
            }
            for (u, v) in extra {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

fn brute_top_k(g: &CsrGraph, k: usize) -> Vec<(NodeId, u64)> {
    let exact = exact_farness(g).unwrap();
    let mut idx: Vec<NodeId> = (0..g.num_nodes() as NodeId).collect();
    idx.sort_by_key(|&v| (exact[v as usize], v));
    idx.truncate(k);
    idx.into_iter().map(|v| (v, exact[v as usize])).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flat scan: pruned and full verification produce bit-identical
    /// rankings (and identical bound-pruned counts) for every estimation
    /// method, BFS kernel, rate, k and seed — and both equal brute force.
    #[test]
    fn pruned_ranked_bit_identical_across_methods_kernels_seeds(
        g in connected_graph(),
        rate in 0.1f64..1.0,
        k_raw in 1usize..8,
        seed in 0u64..1000,
        method_ix in 0usize..3,
        kernel_ix in 0usize..4,
    ) {
        let method = [Method::RandomSampling, Method::ICR, Method::Cumulative][method_ix];
        let kernel =
            [Kernel::Auto, Kernel::TopDown, Kernel::Hybrid, Kernel::MsBfs][kernel_ix];
        let est = BricsEstimator::new(method)
            .sample(SampleSize::Fraction(rate))
            .seed(seed)
            .kernel(KernelConfig::new(kernel))
            .run(&g)
            .unwrap();
        let k = k_raw.min(g.num_nodes());
        let ctx = ExecutionContext::new();
        let pruned = brics::topk::top_k_from_estimate_with(&g, k, &est, true, &ctx).unwrap();
        let full = brics::topk::top_k_from_estimate_with(&g, k, &est, false, &ctx).unwrap();
        prop_assert_eq!(&pruned.ranked, &full.ranked, "pruned vs full diverged");
        prop_assert_eq!(pruned.pruned, full.pruned, "bound-pruned counts diverged");
        prop_assert_eq!(pruned.verified_for_free, full.verified_for_free);
        prop_assert_eq!(full.pruned_bfs, 0, "full mode must never cut");
        prop_assert_eq!(
            pruned.verified_with_bfs + pruned.pruned_bfs,
            full.verified_with_bfs,
            "every cut sweep must correspond to a full-mode completed sweep"
        );
        prop_assert_eq!(pruned.ranked, brute_top_k(&g, k));
    }

    /// Through the engine: a prepared artifact (with and without chain
    /// contraction, so both the reduced-graph sweep and the working-graph
    /// fallback are exercised) yields the same bit-identical guarantee.
    #[test]
    fn prepared_topk_pruned_matches_full_and_brute_force(
        g in connected_graph(),
        rate in 0.2f64..1.0,
        k_raw in 1usize..6,
        seed in 0u64..100,
        contract in any::<bool>(),
    ) {
        let reductions = if contract {
            ReductionConfig::all()
        } else {
            ReductionConfig::all().without_contraction()
        };
        let pcfg = PrepareConfig { reductions, ..Default::default() };
        let ctx = ExecutionContext::new();
        let p = PreparedGraph::build_with(&g, pcfg, &ctx).unwrap();
        let k = k_raw.min(g.num_nodes());
        let pruned = p.topk_with(k, SampleSize::Fraction(rate), seed, true, &ctx).unwrap();
        let full = p.topk_with(k, SampleSize::Fraction(rate), seed, false, &ctx).unwrap();
        prop_assert_eq!(&pruned.ranked, &full.ranked, "pruned vs full diverged");
        prop_assert_eq!(full.pruned_bfs, 0);
        prop_assert_eq!(pruned.ranked, brute_top_k(&g, k));
    }
}
