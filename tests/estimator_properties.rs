//! Property-based tests (proptest) over random connected graphs: the
//! lossless-reduction invariants, the BCT accounting identity, and the
//! estimator's core guarantees.

// Tests index several parallel arrays by vertex id; the indexed loops
// are clearer than zipped iterators here.
#![allow(clippy::needless_range_loop)]

use brics::{exact_farness, BricsEstimator, Method, ReductionConfig, SampleSize};
use brics_bicc::{biconnected_components, BlockCutTree};
use brics_graph::traversal::{bfs_distances, DialBfs};
use brics_graph::{CsrGraph, GraphBuilder, NodeId};
use brics_reduce::{reconstruct_distances, reduce};
use proptest::prelude::*;

/// Strategy: connected graph with `n ∈ [2, 40]` vertices — a random
/// spanning tree plus a random set of extra edges (possibly none, so trees,
/// and possibly many, so dense blocks).
fn connected_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..40).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0usize..usize::MAX, n - 1);
        let extra = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..2 * n);
        (Just(n), tree, extra).prop_map(|(n, parents, extra)| {
            let mut b = GraphBuilder::new(n);
            for (i, p) in parents.iter().enumerate() {
                let child = (i + 1) as NodeId;
                b.add_edge(child, (p % (i + 1)) as NodeId);
            }
            for (u, v) in extra {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reductions + reconstruction reproduce the original BFS distances
    /// from every surviving source, under every preset.
    #[test]
    fn reductions_are_lossless(g in connected_graph(), fixpoint in any::<bool>()) {
        let mut config = ReductionConfig::all();
        config.fixpoint = fixpoint;
        let r = reduce(&g, &config);
        let mut dial = DialBfs::new(g.num_nodes());
        for s in 0..g.num_nodes() as NodeId {
            if r.removed[s as usize] {
                continue;
            }
            dial.run_with(&r.graph, r.weights.as_deref(), s, |_, _| {});
            let mut d = dial.distances()[..g.num_nodes()].to_vec();
            reconstruct_distances(&r.records, &mut d);
            prop_assert_eq!(&d, &bfs_distances(&g, s), "source {}", s);
        }
    }

    /// Identical-node groups have identical exact farness (paper §III-A).
    #[test]
    fn identical_groups_share_farness(g in connected_graph()) {
        let r = reduce(&g, &ReductionConfig {
            identical: true, chains: false, redundant: false,
            contract: false, fixpoint: false,
        });
        let exact = exact_farness(&g).unwrap();
        for rec in &r.records {
            if let brics_reduce::Removal::Identical { node, rep } = rec {
                prop_assert_eq!(exact[*node as usize], exact[*rep as usize]);
            }
        }
    }

    /// The BCT's block edge sets partition E, blocks cover V, and the tree
    /// relation holds.
    #[test]
    fn bct_structure(g in connected_graph()) {
        let bct = BlockCutTree::build(&g);
        prop_assert!(bct.is_tree());
        let edge_total: usize = bct.blocks().iter().map(|b| b.edges.len()).sum();
        prop_assert_eq!(edge_total, g.num_edges());
        for v in g.nodes() {
            prop_assert!(!bct.blocks_of(v).is_empty(), "vertex {} uncovered", v);
        }
        // Articulation count sanity: matches a fresh decomposition.
        let bi = biconnected_components(&g);
        prop_assert_eq!(bct.num_cut_vertices(), bi.num_cut_vertices());
    }

    /// Cumulative at full rate: survivors exact, nothing overestimates.
    #[test]
    fn cumulative_full_rate_invariants(g in connected_graph(), seed in 0u64..1000) {
        let exact = exact_farness(&g).unwrap();
        let est = BricsEstimator::new(Method::Cumulative)
            .sample(SampleSize::Fraction(1.0))
            .seed(seed)
            .run(&g)
            .unwrap();
        for v in 0..g.num_nodes() {
            prop_assert!(est.raw()[v] <= exact[v], "overestimate at {}", v);
            if est.is_sampled(v as u32) {
                prop_assert_eq!(est.raw()[v], exact[v], "sampled {} inexact", v);
            }
        }
    }

    /// Partial rates never overestimate and sampled vertices stay exact,
    /// for both the plain-reduction and the cumulative estimator.
    #[test]
    fn partial_rate_invariants(
        g in connected_graph(),
        rate in 0.05f64..1.0,
        seed in 0u64..1000,
    ) {
        let exact = exact_farness(&g).unwrap();
        for method in [Method::RandomSampling, Method::ICR, Method::Cumulative] {
            let est = BricsEstimator::new(method)
                .sample(SampleSize::Fraction(rate))
                .seed(seed)
                .run(&g)
                .unwrap();
            for v in 0..g.num_nodes() {
                prop_assert!(est.raw()[v] <= exact[v]);
                if est.is_sampled(v as u32) && method == Method::RandomSampling {
                    prop_assert_eq!(est.raw()[v], exact[v]);
                }
            }
        }
    }

    /// The exact top-k search returns exactly the brute-force ranking for
    /// any graph, rate and k.
    #[test]
    fn topk_matches_brute_force(
        g in connected_graph(),
        rate in 0.1f64..1.0,
        k_raw in 1usize..8,
        seed in 0u64..100,
    ) {
        let est = BricsEstimator::new(Method::Cumulative)
            .sample(SampleSize::Fraction(rate))
            .seed(seed)
            .run(&g)
            .unwrap();
        let t = brics::topk::top_k_from_estimate(&g, k_raw, &est);
        let exact = exact_farness(&g).unwrap();
        let mut idx: Vec<u32> = (0..g.num_nodes() as u32).collect();
        idx.sort_by_key(|&v| (exact[v as usize], v));
        idx.truncate(k_raw.min(g.num_nodes()));
        let brute: Vec<(u32, u64)> =
            idx.into_iter().map(|v| (v, exact[v as usize])).collect();
        prop_assert_eq!(t.ranked, brute);
    }

    /// Scaled estimates are within a factor of the truth for sampled
    /// vertices (they equal raw, hence exact) and positive everywhere on
    /// graphs with >= 2 vertices.
    #[test]
    fn scaled_estimates_sane(g in connected_graph(), seed in 0u64..100) {
        let est = BricsEstimator::new(Method::Cumulative)
            .sample(SampleSize::Fraction(0.5))
            .seed(seed)
            .run(&g)
            .unwrap();
        for v in 0..g.num_nodes() as u32 {
            let s = est.scaled()[v as usize];
            prop_assert!(s.is_finite());
            prop_assert!(s >= est.raw()[v as usize] as f64 - 1e-9);
            if est.is_sampled(v) {
                prop_assert!((s - est.raw()[v as usize] as f64).abs() < 1e-9);
            }
        }
    }
}
