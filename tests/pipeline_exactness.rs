//! Cross-crate integration tests: the whole pipeline — generators →
//! reductions → biconnected decomposition → estimators — against exact
//! ground truth, on every graph class and every method.

// Tests index several parallel arrays by vertex id; the indexed loops
// are clearer than zipped iterators here.
#![allow(clippy::needless_range_loop)]

use brics::{exact_farness, BricsEstimator, Method, ReductionConfig, SampleSize};
use brics_graph::generators::{ClassParams, GraphClass};
use brics_graph::CsrGraph;

fn class_graph(class: GraphClass, n: usize, seed: u64) -> CsrGraph {
    class.generate(ClassParams::new(n, seed))
}

const ALL_METHODS: [Method; 4] =
    [Method::RandomSampling, Method::CR, Method::ICR, Method::Cumulative];

/// Every method at a 100 % sampling rate gives exact values on all vertices
/// it samples, and never overestimates anywhere.
#[test]
fn full_rate_sampled_vertices_exact_all_classes_all_methods() {
    for class in GraphClass::ALL {
        let g = class_graph(class, 600, 42);
        let exact = exact_farness(&g).unwrap();
        for method in ALL_METHODS {
            let est = BricsEstimator::new(method)
                .sample(SampleSize::Fraction(1.0))
                .seed(7)
                .run(&g)
                .unwrap();
            for v in 0..g.num_nodes() {
                assert!(
                    est.raw()[v] <= exact[v],
                    "{class:?}/{}: overestimate at {v}",
                    method.name()
                );
                if est.is_sampled(v as u32) {
                    assert_eq!(
                        est.raw()[v],
                        exact[v],
                        "{class:?}/{}: sampled vertex {v} inexact",
                        method.name()
                    );
                }
            }
        }
    }
}

/// Random sampling at 100 % is exact *everywhere* (no reductions, so every
/// vertex is a source). This pins the baseline semantics.
#[test]
fn random_sampling_full_rate_exact_everywhere() {
    for class in GraphClass::ALL {
        let g = class_graph(class, 500, 3);
        let exact = exact_farness(&g).unwrap();
        let est = BricsEstimator::new(Method::RandomSampling)
            .sample(SampleSize::Fraction(1.0))
            .seed(0)
            .run(&g)
            .unwrap();
        assert_eq!(est.raw(), exact.as_slice(), "{class:?}");
    }
}

/// The reduced (non-BCC) estimator and the cumulative estimator agree with
/// each other on every vertex they both sample exactly.
#[test]
fn methods_agree_on_commonly_exact_vertices() {
    let g = class_graph(GraphClass::Community, 700, 9);
    let exact = exact_farness(&g).unwrap();
    let icr = BricsEstimator::new(Method::ICR)
        .sample(SampleSize::Fraction(1.0))
        .seed(5)
        .run(&g)
        .unwrap();
    let cum = BricsEstimator::new(Method::Cumulative)
        .sample(SampleSize::Fraction(1.0))
        .seed(5)
        .run(&g)
        .unwrap();
    for v in 0..g.num_nodes() {
        if icr.is_sampled(v as u32) && cum.is_sampled(v as u32) {
            assert_eq!(icr.raw()[v], cum.raw()[v], "vertex {v}");
            assert_eq!(icr.raw()[v], exact[v], "vertex {v}");
        }
    }
}

/// Estimates grow monotonically with more distance mass: raw estimates are
/// partial sums, so they can never exceed the exact farness at any rate.
#[test]
fn raw_estimates_never_exceed_exact_at_any_rate() {
    let g = class_graph(GraphClass::Web, 800, 21);
    let exact = exact_farness(&g).unwrap();
    for rate in [0.1, 0.3, 0.5, 0.8] {
        for method in ALL_METHODS {
            let est = BricsEstimator::new(method)
                .sample(SampleSize::Fraction(rate))
                .seed(11)
                .run(&g)
                .unwrap();
            for v in 0..g.num_nodes() {
                assert!(
                    est.raw()[v] <= exact[v],
                    "{}@{rate}: overestimate at {v}: {} > {}",
                    method.name(),
                    est.raw()[v],
                    exact[v]
                );
            }
        }
    }
}

/// Scaled quality improves (or holds) as the sampling rate rises.
#[test]
fn scaled_quality_improves_with_rate() {
    use brics::quality::symmetric_quality;
    let g = class_graph(GraphClass::Social, 800, 2);
    let exact = exact_farness(&g).unwrap();
    let q_at = |rate: f64| {
        let est = BricsEstimator::new(Method::Cumulative)
            .sample(SampleSize::Fraction(rate))
            .seed(4)
            .run(&g)
            .unwrap();
        symmetric_quality(est.scaled(), &exact)
    };
    let (q1, q2, q3) = (q_at(0.1), q_at(0.4), q_at(1.0));
    assert!(q2 > q1 - 0.05, "quality dropped: {q1} -> {q2}");
    assert!(q3 > q2 - 0.05, "quality dropped: {q2} -> {q3}");
    assert!(q3 > 0.9, "full-rate scaled quality should be high: {q3}");
}

/// The paper's configuration table: every ReductionConfig preset works
/// under both the plain and the BCC estimator on every class.
#[test]
fn all_reduction_presets_run_everywhere() {
    let presets = [
        ReductionConfig::none(),
        ReductionConfig::chains_only(),
        ReductionConfig::cr(),
        ReductionConfig::all(),
        ReductionConfig::all().without_contraction(),
        ReductionConfig::all().with_fixpoint(),
    ];
    for class in GraphClass::ALL {
        let g = class_graph(class, 400, 1);
        let exact = exact_farness(&g).unwrap();
        for reductions in presets {
            for use_bcc in [false, true] {
                let est = BricsEstimator::new(Method::Custom { reductions, use_bcc })
                    .sample(SampleSize::Fraction(1.0))
                    .seed(2)
                    .run(&g)
                    .unwrap();
                for v in 0..g.num_nodes() {
                    assert!(est.raw()[v] <= exact[v], "{class:?} {reductions:?} bcc={use_bcc}");
                    if est.is_sampled(v as u32) {
                        assert_eq!(
                            est.raw()[v],
                            exact[v],
                            "{class:?} {reductions:?} bcc={use_bcc} v={v}"
                        );
                    }
                }
            }
        }
    }
}

/// Degenerate inputs across the public API.
#[test]
fn degenerate_graphs() {
    use brics_graph::generators::{complete_graph, cycle_graph, path_graph, star_graph};
    for g in [
        path_graph(2),
        path_graph(3),
        cycle_graph(3),
        star_graph(2),
        complete_graph(3),
        brics_graph::GraphBuilder::new(1).build(),
    ] {
        let exact = exact_farness(&g).unwrap();
        for method in ALL_METHODS {
            let est = BricsEstimator::new(method)
                .sample(SampleSize::Fraction(1.0))
                .seed(0)
                .run(&g)
                .unwrap_or_else(|e| panic!("{method:?} on {} nodes: {e}", g.num_nodes()));
            for v in 0..g.num_nodes() {
                assert!(est.raw()[v] <= exact[v]);
            }
        }
    }
}
