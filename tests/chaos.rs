//! Chaos suite: drives the seeded fault-injection framework through the
//! degradation ladder and checks the robustness contract cell by cell.
//!
//! Every matrix cell arms one `site=kind@trigger` fault, runs a query
//! through [`brics::run_degraded`], and asserts the same three things the
//! CLI documents:
//!
//! 1. **Soundness** — the per-vertex [`FarnessEstimate::lower_bounds`] of
//!    whatever rung answered never exceed the true farness, and every
//!    completed source carries its exact value.
//! 2. **Honest reporting** — the run report (round-tripped through JSON,
//!    exactly as `--metrics` emits it) names the answering rung as the
//!    last entry of `degradation_path`, and audits the armed failpoint
//!    under `faults_injected`.
//! 3. **The documented exit code** — the CLI maps a ladder answer to
//!    exit 4 when the run was interrupted (deadline/cancel), exit 6 when
//!    a lower rung answered (or sources stayed quarantined), and exit 0
//!    when retries fully recovered the requested estimate. The mapping is
//!    recomputed here from the library-visible outcome.
//!
//! `io.read` is a CLI-stage failpoint (exit 3, covered by the CLI's own
//! tests); `bfs.level` only arms the frontier-parallel engine, which the
//! panic-isolating driver never schedules — its cell documents that
//! inertness instead of a fire. The `io.artifact` failpoint (and real
//! on-disk corruption/truncation of a prepared-graph artifact) is covered
//! by [`artifact_cells_exit_3_and_never_panic`]: the load stage fails
//! with the typed input error before any query, never a panic.

use brics::{
    exact_farness, run_degraded, DegradationPolicy, DegradedEstimate, DegradedRequest,
    ExecutionContext, FarnessEstimate, Method, PrepareConfig, PreparedGraph, RunRecorder,
    RunReport, SampleSize,
};
use brics_graph::generators::gnm_random_connected;
use brics_graph::telemetry::FaultSiteRecord;
use brics_graph::traversal::{Kernel, KernelConfig};
use brics_graph::{CsrGraph, FaultPlan, RunControl};
use proptest::prelude::*;
use std::time::Duration;

const SEED: u64 = 7;
const K: usize = 12;

fn no_bcc() -> PrepareConfig {
    PrepareConfig { use_bcc: false, ..Default::default() }
}

fn policy() -> DegradationPolicy {
    DegradationPolicy::default().with_backoff(Duration::ZERO)
}

/// The CLI's documented exit-code mapping, recomputed from library state:
/// interruption outranks degradation outranks success.
fn documented_exit(d: &DegradedEstimate) -> i32 {
    if d.estimate.outcome().is_interrupted() {
        4
    } else if d.degraded {
        6
    } else {
        0
    }
}

/// Lower bounds must never exceed the true farness, and completed sources
/// carry their exact value.
fn assert_sound(est: &FarnessEstimate, exact: &[u64], cell: &str) {
    let lb = est.lower_bounds();
    for (v, (&b, &ex)) in lb.iter().zip(exact).enumerate() {
        assert!(b <= ex, "{cell}: lower bound {b} > exact {ex} at vertex {v}");
        if est.is_sampled(v as u32) {
            assert_eq!(est.raw()[v], ex, "{cell}: sampled vertex {v} is not exact");
        }
    }
}

/// One matrix cell: a fault spec, the prepared-artifact shape, the rung-1
/// request, and the contract the cell must satisfy.
struct Cell {
    spec: &'static str,
    use_bcc: bool,
    request: DegradedRequest,
    exit: i32,
    answered: &'static str,
    /// Expected fires at the armed site (`None` ⇒ at least one).
    fired: Option<u64>,
    /// Kernel override for the cell (`None` ⇒ the default `auto`). The
    /// `bfs.batch` cells pin `msbfs` so the batched engine schedules even
    /// at this matrix's small `K`.
    kernel: Option<Kernel>,
}

fn cell(
    spec: &'static str,
    use_bcc: bool,
    request: DegradedRequest,
    exit: i32,
    answered: &'static str,
) -> Cell {
    Cell { spec, use_bcc, request, exit, answered, fired: None, kernel: None }
}

/// Runs one cell end to end and returns the ladder answer plus the
/// JSON-round-tripped run report (stamped the way the CLI stamps it).
fn run_cell(g: &CsrGraph, c: &Cell) -> (DegradedEstimate, RunReport) {
    let plan = FaultPlan::parse(c.spec).unwrap();
    let rec = RunRecorder::new();
    let mut ctx = ExecutionContext::new()
        .with_control(RunControl::new().with_fault_plan(plan))
        .with_degradation(policy())
        .with_recorder(&rec);
    if let Some(k) = c.kernel {
        ctx = ctx.with_kernel(KernelConfig::new(k));
    }
    let pcfg = if c.use_bcc { PrepareConfig::default() } else { no_bcc() };
    let p = PreparedGraph::build_with(g, pcfg, &ctx)
        .unwrap_or_else(|e| panic!("{}: prepare failed: {e}", c.spec));
    let d = run_degraded(&p, &c.request, SampleSize::Count(K), SEED, &ctx)
        .unwrap_or_else(|e| panic!("{}: ladder failed: {e}", c.spec));
    let mut report = rec.report();
    let plan = ctx.control().fault_plan().unwrap();
    report.faults_injected = plan
        .site_records()
        .iter()
        .map(|s| FaultSiteRecord { site: s.site.to_string(), hits: s.hits, fired: s.fired })
        .collect();
    report.degradation_path = d.path.clone();
    // Round-trip through JSON exactly as `--metrics` serializes it: the
    // parsed report is what a consumer of the run report would see.
    let text = serde_json::to_string(&report).unwrap();
    let parsed: RunReport = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{}: report does not round-trip: {e}", c.spec));
    (d, parsed)
}

#[test]
fn fault_matrix_answers_soundly_with_honest_reports() {
    let g = gnm_random_connected(90, 160, 31);
    let exact = exact_farness(&g).unwrap();
    let random = || DegradedRequest::Estimate(Method::RandomSampling);
    let icr = || DegradedRequest::Estimate(Method::ICR);
    let cml = || DegradedRequest::Estimate(Method::Cumulative);
    let cells = [
        // ---- bfs.source: every kind at the per-source failpoint --------
        cell("bfs.source=panic@nth:1", false, random(), 0, "random"),
        cell("bfs.source=panic@every:1", false, random(), 6, "random"),
        cell("bfs.source=slow@every:2", false, random(), 0, "random"),
        cell("bfs.source=deadline-expire@nth:3", false, random(), 4, "partial-lower-bounds"),
        cell("bfs.source=io-error@nth:2", false, random(), 0, "random"),
        // mem-deny at a site that performs no admission is sticky but
        // inert until the next admission — this run has none left.
        cell("bfs.source=mem-deny@nth:1", false, random(), 0, "random"),
        // ---- reduce.rule: prepare-stage faults --------------------------
        cell("reduce.rule=panic@every:1", false, icr(), 6, "I+C+R"),
        cell("reduce.rule=slow@nth:1", false, icr(), 0, "I+C+R"),
        // ---- bct.build: decomposition faults ----------------------------
        cell("bct.build=panic@every:1", true, cml(), 6, "sampling@0.1"),
        cell("bct.build=io-error@nth:1", true, cml(), 0, "cumulative"),
        cell("bct.build=deadline-expire@nth:1", true, cml(), 4, "partial-lower-bounds"),
        // ---- estimate.phase_b: block-task faults ------------------------
        cell("estimate.phase_b=panic@every:1", true, cml(), 6, "sampling@0.1"),
        cell("estimate.phase_b=slow@every:2", true, cml(), 0, "cumulative"),
        // ---- bfs.batch: batched MS-BFS faults ---------------------------
        // The batch is the isolation unit: a panic quarantines all of the
        // batch's sources, the retry re-feeds them as one fresh batch (the
        // nth:1 arm is spent, so it recovers to exit 0).
        Cell {
            spec: "bfs.batch=panic@nth:1",
            use_bcc: false,
            request: random(),
            exit: 0,
            answered: "random",
            fired: Some(1),
            kernel: Some(Kernel::MsBfs),
        },
        Cell {
            spec: "bfs.batch=panic@every:1",
            use_bcc: false,
            request: random(),
            exit: 6,
            answered: "random",
            fired: None,
            kernel: Some(Kernel::MsBfs),
        },
        Cell {
            spec: "bfs.batch=slow@every:1",
            use_bcc: false,
            request: random(),
            exit: 0,
            answered: "random",
            fired: None,
            kernel: Some(Kernel::MsBfs),
        },
        // ---- alloc.admit: memory-admission faults -----------------------
        // Hit 1 is the prepare-stage admission; hit 2 denies the rung-1
        // query, hit 3 admits the fallback rung.
        cell("alloc.admit=mem-deny@nth:2", false, random(), 6, "sampling@0.1"),
        // ---- bfs.level: armed but never scheduled -----------------------
        // The failpoint lives in the frontier-parallel engine; the
        // panic-isolating driver runs source-parallel serial kernels, so
        // the site records zero hits and the run is untouched.
        Cell {
            spec: "bfs.level=panic@every:1",
            use_bcc: false,
            request: random(),
            exit: 0,
            answered: "random",
            fired: Some(0),
            kernel: None,
        },
    ];
    assert!(cells.len() >= 12, "matrix shrank below the contract");
    for c in &cells {
        let (d, report) = run_cell(&g, c);
        let cellname = c.spec;
        assert_sound(&d.estimate, &exact, cellname);
        assert_eq!(documented_exit(&d), c.exit, "{cellname}: exit code (answer: {d:?})");
        assert_eq!(d.answered_by, c.answered, "{cellname}: answering rung");
        // The report is parseable and names the answering rung last.
        assert_eq!(report.schema, RunReport::SCHEMA, "{cellname}");
        assert_eq!(
            report.degradation_path.last().unwrap(),
            &d.answered_by,
            "{cellname}: path tail"
        );
        let site_name = c.spec.split('=').next().unwrap();
        let site = report
            .faults_injected
            .iter()
            .find(|s| s.site == site_name)
            .unwrap_or_else(|| panic!("{cellname}: site missing from faults_injected"));
        match c.fired {
            Some(want) => assert_eq!(site.fired, want, "{cellname}: fire count"),
            None => assert!(site.fired >= 1, "{cellname}: the armed fault never fired"),
        }
        assert!(report.retries >= d.retries, "{cellname}: report hides sweep retries");
    }
}

/// The artifact cells of the chaos matrix: a corrupt or truncated
/// prepared-graph artifact — whether the damage is real bytes on disk or
/// an injected `io.artifact` fire at any validation stage — fails the
/// load with the typed [`brics::CentralityError::Artifact`] the CLI maps
/// to the input-error exit code 3. Loading never panics and never
/// returns a prepared graph built from damaged bytes.
#[test]
fn artifact_cells_exit_3_and_never_panic() {
    /// The CLI's `From<CentralityError>` mapping, recomputed here: the
    /// artifact variant is an input/data error.
    fn documented_exit(e: &brics::CentralityError) -> i32 {
        match e {
            brics::CentralityError::Internal { .. } => 5,
            brics::CentralityError::Interrupted { .. } => 4,
            _ => 3,
        }
    }

    let g = gnm_random_connected(90, 160, 31);
    let ctx = ExecutionContext::new();
    let p = PreparedGraph::build_with(&g, PrepareConfig::default(), &ctx).unwrap();
    let dir = std::env::temp_dir().join("brics-chaos-artifact");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("cells-{}.brics", std::process::id()));
    p.save(&path, "chaos-matrix", &ctx).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Cell 1 — corruption: a byte flip inside the payload region fails
    // the per-section checksum verification at open.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xff;
    std::fs::write(&path, &corrupt).unwrap();
    let err = PreparedGraph::load(&path, &ctx).unwrap_err();
    assert!(
        matches!(err, brics::CentralityError::Artifact { .. }),
        "corrupt cell: wrong error class: {err}"
    );
    assert_eq!(documented_exit(&err), 3, "corrupt cell: {err}");

    // Cell 2 — truncation: the section table points past end-of-file.
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    let err = PreparedGraph::load(&path, &ctx).unwrap_err();
    assert!(
        matches!(err, brics::CentralityError::Artifact { .. }),
        "truncated cell: wrong error class: {err}"
    );
    assert_eq!(documented_exit(&err), 3, "truncated cell: {err}");

    // The injected flavors: an `io.artifact` arm fired at each validation
    // stage (0 = header, 1 = table, 2 = checksum) of a *healthy* file is
    // typed identically, and the audit trail records exactly one fire.
    std::fs::write(&path, &bytes).unwrap();
    for stage in 0..3u64 {
        let plan = FaultPlan::parse(&format!("io.artifact=io-error@on:{stage}")).unwrap();
        let fault_ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_fault_plan(plan.clone()));
        let err = PreparedGraph::load(&path, &fault_ctx).unwrap_err();
        assert!(
            matches!(err, brics::CentralityError::Artifact { .. }),
            "io.artifact stage {stage}: wrong error class: {err}"
        );
        assert_eq!(documented_exit(&err), 3, "io.artifact stage {stage}");
        assert_eq!(plan.fired(brics_graph::FaultSite::IoArtifact), 1, "stage {stage}");
    }
    // And the undamaged file still loads and answers.
    let (reloaded, _) = PreparedGraph::load(&path, &ctx).unwrap();
    assert_eq!(reloaded.exact(&ctx).unwrap(), exact_farness(&g).unwrap());
    std::fs::remove_file(&path).ok();
}

/// The headline recovery guarantee: a panic quarantines the source, the
/// retry succeeds, and the final estimate is **bit-identical** to the
/// fault-free run — contributions publish only after a source completes.
#[test]
fn recovered_panic_is_bit_identical_to_fault_free() {
    let g = gnm_random_connected(90, 160, 31);
    let clean_ctx = ExecutionContext::new().with_degradation(policy());
    let p = PreparedGraph::build_with(&g, no_bcc(), &clean_ctx).unwrap();
    let request = DegradedRequest::Estimate(Method::RandomSampling);
    let clean = run_degraded(&p, &request, SampleSize::Count(K), SEED, &clean_ctx).unwrap();
    let ctx = ExecutionContext::new()
        .with_control(
            RunControl::new()
                .with_fault_plan(FaultPlan::parse("bfs.source=panic@nth:1").unwrap()),
        )
        .with_degradation(policy());
    let d = run_degraded(&p, &request, SampleSize::Count(K), SEED, &ctx).unwrap();
    assert!(d.retries >= 1, "the fault never tripped a retry");
    assert_eq!(d.quarantined, 0);
    assert_eq!(documented_exit(&d), 0);
    assert_eq!(d.estimate.raw(), clean.estimate.raw());
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(d.estimate.scaled()), bits(clean.estimate.scaled()));
    assert_eq!(d.estimate.sampled_mask(), clean.estimate.sampled_mask());
    assert_eq!(d.estimate.coverage(), clean.estimate.coverage());
    assert_eq!(d.estimate.num_sources(), clean.estimate.num_sources());
    assert_eq!(d.estimate.outcome(), clean.estimate.outcome());
}

/// Batch-granular quarantine composes with the retry machinery: a panicked
/// MS-BFS batch quarantines *all* of its sources, contributes nothing, and
/// one retry of the whole batch recovers a result bit-identical to the
/// fault-free batched run — which is itself bit-identical to the per-source
/// kernels. Per-source coverage accounting survives batching: every
/// completed source covers all `n−1` others, every vertex is covered by
/// exactly the completed sources.
#[test]
fn batched_panic_quarantines_batch_and_recovers_bit_identical() {
    let g = gnm_random_connected(90, 160, 31);
    let exact = exact_farness(&g).unwrap();
    let request = DegradedRequest::Estimate(Method::RandomSampling);
    let msbfs = KernelConfig::new(Kernel::MsBfs);

    let clean_ctx = ExecutionContext::new().with_degradation(policy());
    let p = PreparedGraph::build_with(&g, no_bcc(), &clean_ctx).unwrap();
    let clean = run_degraded(&p, &request, SampleSize::Count(K), SEED, &clean_ctx).unwrap();

    let ctx = ExecutionContext::new()
        .with_control(
            RunControl::new().with_fault_plan(FaultPlan::parse("bfs.batch=panic@nth:1").unwrap()),
        )
        .with_degradation(policy())
        .with_kernel(msbfs);
    let d = run_degraded(&p, &request, SampleSize::Count(K), SEED, &ctx).unwrap();
    // All K sources ride one batch, so the single panic quarantined — and
    // the ladder retried — every one of them.
    assert!(d.retries >= K as u64, "batch quarantine must retry all {K} sources: {d:?}");
    assert_eq!(d.quarantined, 0, "retry must clear the quarantine");
    assert_eq!(documented_exit(&d), 0);
    assert_eq!(d.estimate.raw(), clean.estimate.raw());
    assert_eq!(d.estimate.sampled_mask(), clean.estimate.sampled_mask());
    assert_eq!(d.estimate.coverage(), clean.estimate.coverage());
    assert_eq!(d.estimate.num_sources(), clean.estimate.num_sources());
    assert_eq!(d.estimate.outcome(), clean.estimate.outcome());

    // Per-source coverage accounting under batching: completed sources are
    // exact and fully covered, everyone else counts exactly the completed
    // sources.
    let est = &d.estimate;
    let n1 = (g.num_nodes() - 1) as u32;
    for (v, &ex) in exact.iter().enumerate() {
        assert!(est.lower_bounds()[v] <= ex);
        if est.is_sampled(v as u32) {
            assert_eq!(est.coverage()[v], n1);
            assert_eq!(est.raw()[v], ex);
        } else {
            assert_eq!(est.coverage()[v], est.num_sources() as u32);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under any seeded fault, the ladder's answer is dominated by the
    /// fault-free run per vertex (the degraded accumulation is a subset —
    /// quarantine drops sources, interruption truncates the sweep, the
    /// fallback rung samples a prefix of the same draw), and the coverage
    /// accounting matches the sources that actually finished.
    #[test]
    fn degraded_answers_are_dominated_and_account_coverage(
        gseed in 0u64..500,
        n in 25usize..60,
        extra in 5usize..40,
        fault in 0usize..4,
        nth in 1u64..6,
    ) {
        let g = gnm_random_connected(n, n + extra, gseed);
        let exact = exact_farness(&g).unwrap();
        let clean_ctx = ExecutionContext::new().with_degradation(policy());
        let p = PreparedGraph::build_with(&g, no_bcc(), &clean_ctx).unwrap();
        let request = DegradedRequest::Estimate(Method::RandomSampling);
        let k = (n / 3).max(2);
        let clean =
            run_degraded(&p, &request, SampleSize::Count(k), gseed ^ 0xabc, &clean_ctx).unwrap();
        prop_assert!(!clean.degraded);

        let spec = match fault {
            0 => format!("bfs.source=panic@nth:{nth}"),
            1 => format!("bfs.source=deadline-expire@nth:{nth}"),
            2 => "bfs.source=panic@every:1".to_string(),
            _ => "alloc.admit=mem-deny".to_string(),
        };
        let ctx = ExecutionContext::new()
            .with_control(RunControl::new().with_fault_plan(FaultPlan::parse(&spec).unwrap()))
            .with_degradation(policy());
        let d = run_degraded(&p, &request, SampleSize::Count(k), gseed ^ 0xabc, &ctx).unwrap();

        prop_assert_eq!(&d.answered_by, d.path.last().unwrap());
        let est = &d.estimate;
        let n1 = (n - 1) as u32;
        for (v, &ex) in exact.iter().enumerate() {
            // Domination: a degraded raw value is a partial sum over a
            // subset of the fault-free run's completed sources.
            prop_assert!(
                est.raw()[v] <= clean.estimate.raw()[v],
                "{}: raw[{}] {} > fault-free {}", spec, v, est.raw()[v],
                clean.estimate.raw()[v]
            );
            prop_assert!(est.coverage()[v] <= clean.estimate.coverage()[v]);
            // Soundness against ground truth.
            prop_assert!(est.lower_bounds()[v] <= ex);
            // Coverage accounting: a finished source saw everyone; any
            // other vertex saw exactly the finished sources.
            if est.is_sampled(v as u32) {
                prop_assert_eq!(est.coverage()[v], n1);
                prop_assert_eq!(est.raw()[v], ex);
            } else {
                prop_assert_eq!(est.coverage()[v], est.num_sources() as u32);
            }
        }
        let finished = est.sampled_mask().iter().filter(|&&s| s).count();
        prop_assert_eq!(finished, est.num_sources());
    }
}
