//! IO integration: generate → serialise → parse → estimate, across both
//! file formats, mirroring a downstream user's ingestion pipeline.

use brics::{exact_farness, BricsEstimator, Method, SampleSize};
use brics_graph::connectivity::make_connected;
use brics_graph::generators::{ClassParams, GraphClass};
use brics_graph::io::{
    read_edge_list_from, read_mtx_from, write_edge_list_to, write_mtx_to,
};

#[test]
fn edge_list_roundtrip_preserves_farness() {
    for class in GraphClass::ALL {
        let g = class.generate(ClassParams::new(300, 8));
        let mut buf = Vec::new();
        write_edge_list_to(&g, &mut buf).unwrap();
        let g2 = read_edge_list_from(buf.as_slice()).unwrap();
        assert_eq!(g, g2, "{class:?}");
        assert_eq!(exact_farness(&g).unwrap(), exact_farness(&g2).unwrap());
    }
}

#[test]
fn mtx_roundtrip_preserves_farness() {
    let g = GraphClass::Community.generate(ClassParams::new(400, 9));
    let mut buf = Vec::new();
    write_mtx_to(&g, &mut buf).unwrap();
    let g2 = read_mtx_from(buf.as_slice()).unwrap();
    assert_eq!(g, g2);
}

#[test]
fn estimate_after_parse_matches_estimate_before() {
    let g = GraphClass::Road.generate(ClassParams::new(500, 10));
    let mut buf = Vec::new();
    write_edge_list_to(&g, &mut buf).unwrap();
    let g2 = read_edge_list_from(buf.as_slice()).unwrap();
    let run = |g| {
        BricsEstimator::new(Method::Cumulative)
            .sample(SampleSize::Fraction(0.3))
            .seed(6)
            .run(g)
            .unwrap()
    };
    assert_eq!(run(&g).raw(), run(&g2).raw());
}

#[test]
fn snap_style_directed_input_normalises() {
    // Directed, duplicated, self-looped, commented input — the shape of a
    // raw SNAP download — must normalise into a usable simple graph.
    let raw = "# Directed graph (each unordered pair of nodes is saved once)\n\
               # FromNodeId ToNodeId\n\
               0 1\n1 0\n1 1\n1 2\n2 3\n3 0\n2 3\n9 9\n";
    let g = read_edge_list_from(raw.as_bytes()).unwrap();
    assert_eq!(g.num_nodes(), 10);
    assert_eq!(g.num_edges(), 4);
    // Isolated vertices 4..9 (bar the 9 9 self-loop) keep the graph
    // disconnected; the paper's preprocessing links them in.
    let (g, added) = make_connected(&g);
    assert!(added > 0);
    let est = BricsEstimator::new(Method::Cumulative)
        .sample(SampleSize::Fraction(1.0))
        .seed(0)
        .run(&g)
        .unwrap();
    assert_eq!(est.len(), 10);
}
