//! The two-stage engine contract: a one-shot convenience wrapper and an
//! explicit prepare/execute split must be **observationally identical** —
//! bit-for-bit equal estimates across methods, kernels, seeds and rates —
//! because the wrappers are nothing but `build` + one query. The suite
//! also pins the amortization guarantee the split exists for: one
//! [`PreparedGraph`] serves many methods and sample sizes with the
//! reduction pipeline running exactly once.

use brics::{
    exact_farness, BricsEstimator, ExecutionContext, FarnessEstimate, Method, PrepareConfig,
    PreparedGraph, ReductionConfig, RunControl, RunOutcome, RunRecorder, SampleSize,
};
use brics_graph::generators::{ClassParams, GraphClass};
use brics_graph::traversal::{Kernel, KernelConfig};

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn assert_identical(a: &FarnessEstimate, b: &FarnessEstimate, what: &str) {
    assert_eq!(a.raw(), b.raw(), "{what}: raw");
    assert_eq!(bits(a.scaled()), bits(b.scaled()), "{what}: scaled bits");
    assert_eq!(a.sampled_mask(), b.sampled_mask(), "{what}: sampled mask");
    assert_eq!(a.coverage(), b.coverage(), "{what}: coverage");
    assert_eq!(a.num_sources(), b.num_sources(), "{what}: num_sources");
    assert_eq!(a.outcome(), b.outcome(), "{what}: outcome");
}

/// The prepare stage a method implies, mirroring `BricsEstimator::run_in`.
fn prepare_config_of(method: Method) -> PrepareConfig {
    PrepareConfig { reductions: method.reductions(), use_bcc: method.uses_bcc(), reorder: false }
}

fn query(
    p: &PreparedGraph<'_>,
    method: Method,
    sample: SampleSize,
    seed: u64,
    ctx: &ExecutionContext<'_>,
) -> FarnessEstimate {
    match method {
        Method::RandomSampling => p.sample(sample, seed, ctx).unwrap(),
        m if m.uses_bcc() => p.cumulative(sample, seed, ctx).unwrap(),
        _ => p.reduced(sample, seed, ctx).unwrap(),
    }
}

#[test]
fn wrappers_match_prepare_execute_across_methods_kernels_and_seeds() {
    let methods = [Method::RandomSampling, Method::CR, Method::ICR, Method::Cumulative];
    for class in [GraphClass::Web, GraphClass::Social] {
        let g = class.generate(ClassParams::new(400, 13));
        for method in methods {
            for kernel in [Kernel::TopDown, Kernel::Auto] {
                for seed in [3u64, 17] {
                    let sample = SampleSize::Fraction(0.3);
                    let ctx = ExecutionContext::new().with_kernel(KernelConfig::new(kernel));
                    let one_shot = BricsEstimator::new(method)
                        .sample(sample)
                        .seed(seed)
                        .kernel(KernelConfig::new(kernel))
                        .run(&g)
                        .unwrap();
                    let p = PreparedGraph::build_with(&g, prepare_config_of(method), &ctx)
                        .unwrap();
                    let split = query(&p, method, sample, seed, &ctx);
                    let what = format!("{class:?}/{}/{kernel:?}/seed {seed}", method.name());
                    assert_identical(&one_shot, &split, &what);
                }
            }
        }
    }
}

#[test]
fn one_artifact_serves_many_methods_and_rates_with_one_reduction() {
    let g = GraphClass::Social.generate(ClassParams::new(500, 29));
    let rec = RunRecorder::new();
    let ctx = ExecutionContext::new().with_recorder(&rec);
    let p = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap();

    // Two methods × two sample sizes, all against the same artifact...
    let runs = [
        (Method::Cumulative, SampleSize::Fraction(0.2)),
        (Method::Cumulative, SampleSize::Fraction(0.5)),
        (Method::RandomSampling, SampleSize::Fraction(0.2)),
        (Method::RandomSampling, SampleSize::Count(40)),
    ];
    let plain_ctx = ExecutionContext::new();
    for (method, sample) in runs {
        let recorded = match method {
            Method::RandomSampling => p.sample(sample, 9, &ctx).unwrap(),
            _ => p.cumulative(sample, 9, &ctx).unwrap(),
        };
        // ...each bit-identical to a fresh one-shot run of that method.
        let fresh =
            BricsEstimator::new(method).sample(sample).seed(9).run_in(&g, &plain_ctx).unwrap();
        assert_identical(&recorded, &fresh, &format!("{}/{sample:?}", method.name()));
    }

    // The telemetry proves the amortization: one reduce, one prepare,
    // four estimate spans.
    let report = rec.report();
    let reduce: Vec<_> = report.phases.iter().filter(|ph| ph.name == "reduce").collect();
    assert_eq!(reduce.len(), 1, "reduce spans aggregate to one entry");
    assert_eq!(reduce[0].count, 1, "the reduction ran exactly once");
    assert_eq!(report.phases.iter().find(|ph| ph.name == "prepare").unwrap().count, 1);
    assert_eq!(report.phases.iter().find(|ph| ph.name == "estimate").unwrap().count, 4);
}

#[test]
fn interruption_is_equivalent_in_both_stages() {
    let g = GraphClass::Web.generate(ClassParams::new(400, 5));
    let est = BricsEstimator::new(Method::Cumulative).sample(SampleSize::Fraction(0.4)).seed(2);

    // A control that is already cancelled interrupts the *prepare* stage:
    // the explicit split surfaces the error, while the one-shot wrapper
    // degrades to the documented zero-coverage partial.
    let cancelled = || {
        let ctl = RunControl::new();
        ctl.cancel_token().cancel();
        ExecutionContext::new().with_control(ctl)
    };
    let err = PreparedGraph::build(&g, &ReductionConfig::all(), &cancelled()).unwrap_err();
    assert!(matches!(err, brics::CentralityError::Interrupted { .. }));
    let wrapper = est.run_in(&g, &cancelled()).unwrap();
    assert_eq!(wrapper.outcome(), RunOutcome::Cancelled);
    assert_eq!(wrapper.num_sources(), 0);
    assert!(wrapper.raw().iter().all(|&v| v == 0));

    // Interrupting only the *query* stage (the artifact was built
    // unbounded) is deterministic for a pre-cancelled control, so two
    // such queries must agree bit for bit.
    let p = PreparedGraph::build(&g, &ReductionConfig::all(), &ExecutionContext::new()).unwrap();
    let a = p.cumulative(SampleSize::Fraction(0.4), 2, &cancelled()).unwrap();
    let b = p.cumulative(SampleSize::Fraction(0.4), 2, &cancelled()).unwrap();
    assert_eq!(a.outcome(), RunOutcome::Cancelled);
    assert_eq!(a.num_sources(), 0);
    assert_identical(&a, &b, "pre-cancelled query determinism");
}

#[test]
fn auxiliary_queries_match_their_wrappers() {
    let g = GraphClass::Community.generate(ClassParams::new(400, 21));
    let ctx = ExecutionContext::new();
    let p = PreparedGraph::build(&g, &ReductionConfig::all(), &ctx).unwrap();

    // Exact farness from the artifact is the ground truth.
    let exact = exact_farness(&g).unwrap();
    assert_eq!(p.exact(&ctx).unwrap(), exact);
    assert_eq!(p.reduced_exact(&ctx).unwrap(), exact);

    // Top-k: the artifact-backed ranking equals the wrapper's.
    let est = BricsEstimator::new(Method::Cumulative).sample(SampleSize::Fraction(0.3)).seed(7);
    let wrapper = brics::topk::top_k_closeness(&g, 8, &est).unwrap();
    let split = p.topk(8, SampleSize::Fraction(0.3), 7, &ctx).unwrap();
    assert_eq!(wrapper.ranked, split.ranked);

    // Harmonic and betweenness ride on the same artifact.
    let hw = brics::harmonic::harmonic_sampling(&g, SampleSize::Fraction(0.3), 5).unwrap();
    let hs = p.harmonic(SampleSize::Fraction(0.3), 5, &ctx).unwrap();
    assert_eq!(hw.values, hs.values);
    assert_eq!(bits(&hw.scaled), bits(&hs.scaled));
    assert_eq!(hw.sampled, hs.sampled);

    let bw = brics::betweenness::sampled_betweenness(&g, SampleSize::Fraction(0.3), 5).unwrap();
    let (bs, outcome) = p.betweenness(SampleSize::Fraction(0.3), 5, &ctx).unwrap();
    assert_eq!(bits(&bw), bits(&bs));
    assert_eq!(outcome, RunOutcome::Complete);
}
