//! Shared fixture for the allocator-invariance suites.
//!
//! `memory_tracking` (tracking allocator installed as `#[global_allocator]`)
//! and `telemetry_invariance` (system allocator, nothing installed) are
//! separate test binaries that both compute [`reference_fingerprint`] and
//! compare it against the pinned [`REFERENCE_FINGERPRINT`]. A tracking
//! allocator that perturbed results — padding sizes, reordering, anything —
//! would make exactly one binary disagree with the constant.

// Each test binary uses a subset of these items.
#![allow(dead_code)]

use brics::ExecutionContext;
use brics_graph::generators::{ClassParams, GraphClass};

/// Exact farness of the fixture graph, folded to 64 bits with FNV-1a.
/// Captured once from a run on the system allocator; exact BFS is
/// deterministic, so every platform and allocator must reproduce it.
pub const REFERENCE_FINGERPRINT: u64 = 0xc01f_ce93_6659_420a;

/// FNV-1a over the exact farness vector of a fixed seeded social graph.
/// Exact computation (no sampling) so the value is independent of thread
/// count and scheduling.
pub fn reference_fingerprint() -> u64 {
    let g = GraphClass::Social.generate(ClassParams::new(500, 77));
    let farness = brics::exact_farness_in(&g, &ExecutionContext::new()).unwrap();
    fnv1a_u64s(&farness)
}

fn fnv1a_u64s(values: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}
