//! Persistence properties of prepared-graph artifacts: `save` → `load` →
//! query must be **bit-identical** to querying the freshly built
//! [`PreparedGraph`], across methods, kernels, seeds, the reorder
//! permutation and the Block-Cut-Tree state, on both storage backends
//! (mmap and the read-into-heap fallback) — and a corrupt or truncated
//! file must surface as the typed [`CentralityError::Artifact`], never a
//! panic or a silently wrong answer.

use brics::{
    CentralityError, ExecutionContext, FarnessEstimate, Kernel, KernelConfig, PrepareConfig,
    PreparedGraph, ReductionConfig, RunRecorder, SampleSize,
};
use brics_graph::{CsrGraph, GraphBuilder, NodeId};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A unique scratch path per case — proptest shrinks re-enter the test
/// body, so names must never collide across (or within) processes.
fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("brics-artifact-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{}.brics",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Strategy: connected graph with `n ∈ [2, 36]` vertices — a random
/// spanning tree plus random extra edges (trees through dense blocks).
fn connected_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..36).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0usize..usize::MAX, n - 1);
        let extra = proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..2 * n);
        (Just(n), tree, extra).prop_map(|(n, parents, extra)| {
            let mut b = GraphBuilder::new(n);
            for (i, p) in parents.iter().enumerate() {
                let child = (i + 1) as NodeId;
                b.add_edge(child, (p % (i + 1)) as NodeId);
            }
            for (u, v) in extra {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn assert_identical(
    a: &FarnessEstimate,
    b: &FarnessEstimate,
    what: &str,
) -> Result<(), String> {
    prop_assert_eq!(a.raw(), b.raw(), "{}: raw", what);
    prop_assert_eq!(bits(a.scaled()), bits(b.scaled()), "{}: scaled bits", what);
    prop_assert_eq!(a.sampled_mask(), b.sampled_mask(), "{}: sampled mask", what);
    prop_assert_eq!(a.coverage(), b.coverage(), "{}: coverage", what);
    prop_assert_eq!(a.num_sources(), b.num_sources(), "{}: num_sources", what);
    prop_assert_eq!(a.outcome(), b.outcome(), "{}: outcome", what);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole guarantee: a query against the loaded artifact equals
    /// the same query against the freshly prepared graph, bit for bit —
    /// whatever the method, kernel, seed, reorder/BCT switches or storage
    /// backend.
    #[test]
    fn save_load_query_is_bit_identical(
        g in connected_graph(),
        seed in any::<u64>(),
        reorder in any::<bool>(),
        use_bcc in any::<bool>(),
        kernel_idx in 0usize..3,
        use_mmap in any::<bool>(),
    ) {
        let kernel = [Kernel::Auto, Kernel::TopDown, Kernel::Hybrid][kernel_idx];
        let ctx = ExecutionContext::new().with_kernel(KernelConfig::new(kernel));
        let pcfg = PrepareConfig {
            reductions: if use_bcc { ReductionConfig::all() } else { ReductionConfig::icr() },
            use_bcc,
            reorder,
        };
        let fresh = PreparedGraph::build_with(&g, pcfg, &ctx).unwrap();
        let path = tmp("prop");
        let saved = fresh.save(&path, "prop-source", &ctx).unwrap();
        let (loaded, info) = PreparedGraph::load_with(&path, use_mmap, &ctx).unwrap();
        std::fs::remove_file(&path).ok();

        // Identity and prepared-state equality before any query.
        prop_assert_eq!(saved.checksum, info.checksum, "save/load digests diverge");
        prop_assert_eq!(info.source.as_str(), "prop-source");
        prop_assert_eq!(loaded.original(), &g, "original CSR must round-trip");
        prop_assert_eq!(loaded.num_surviving(), fresh.num_surviving());
        prop_assert_eq!(loaded.config(), fresh.config());

        let sample = SampleSize::Fraction(0.5);
        let what = format!("{kernel:?}/seed {seed}/reorder {reorder}/bcc {use_bcc}/mmap {use_mmap}");
        assert_identical(
            &fresh.sample(sample, seed, &ctx).unwrap(),
            &loaded.sample(sample, seed, &ctx).unwrap(),
            &format!("sample/{what}"),
        )?;
        assert_identical(
            &fresh.reduced(sample, seed, &ctx).unwrap(),
            &loaded.reduced(sample, seed, &ctx).unwrap(),
            &format!("reduced/{what}"),
        )?;
        if use_bcc {
            assert_identical(
                &fresh.cumulative(sample, seed, &ctx).unwrap(),
                &loaded.cumulative(sample, seed, &ctx).unwrap(),
                &format!("cumulative/{what}"),
            )?;
        }
        prop_assert_eq!(fresh.exact(&ctx).unwrap(), loaded.exact(&ctx).unwrap());
        if g.num_nodes() >= 4 {
            let a = fresh.topk(3, sample, seed, &ctx).unwrap();
            let b = loaded.topk(3, sample, seed, &ctx).unwrap();
            prop_assert_eq!(a.ranked, b.ranked, "top-k ranking diverged ({})", what);
        }
    }

    /// Robustness: a byte flip anywhere in the container either trips the
    /// integrity checks as the typed artifact error, or (only when it
    /// lands in inter-section alignment padding, which no checksum covers)
    /// loads a byte-identical prepared state. Never a panic, never a
    /// different error class.
    #[test]
    fn corrupt_artifacts_yield_typed_errors(
        g in connected_graph(),
        flip_at in any::<u64>(),
        cut_at in any::<u64>(),
    ) {
        let ctx = ExecutionContext::new();
        let pcfg = PrepareConfig {
            reductions: ReductionConfig::all(),
            use_bcc: true,
            reorder: false,
        };
        let fresh = PreparedGraph::build_with(&g, pcfg, &ctx).unwrap();
        let path = tmp("corrupt");
        fresh.save(&path, "corrupt-source", &ctx).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // One flipped byte.
        let mut flipped = bytes.clone();
        let i = (flip_at % bytes.len() as u64) as usize;
        flipped[i] ^= 0x5a;
        std::fs::write(&path, &flipped).unwrap();
        match PreparedGraph::load(&path, &ctx) {
            Err(CentralityError::Artifact { .. }) => {}
            Ok(_) => {} // the flip landed in alignment padding
            Err(other) => prop_assert!(false, "flip at {i}: wrong error class: {other}"),
        }

        // Truncation at any strictly shorter length.
        let keep = (cut_at % bytes.len() as u64) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        match PreparedGraph::load(&path, &ctx) {
            Err(CentralityError::Artifact { .. }) => {}
            Ok(_) => prop_assert!(false, "truncated to {keep} of {} bytes but loaded", bytes.len()),
            Err(other) => prop_assert!(false, "truncated to {keep}: wrong error class: {other}"),
        }
        std::fs::remove_file(&path).ok();
    }
}

/// The storage-backend acceptance criterion, end to end: the mmap path
/// serves CSR sections in place (mapped bytes charged, zero copied) while
/// the forced-heap path copies every one — and both answer identically.
#[test]
fn mmap_and_heap_backends_agree_and_charge_the_right_counters() {
    let g = brics_graph::generators::social_like(brics_graph::generators::ClassParams::new(
        400, 23,
    ));
    let build_ctx = ExecutionContext::new();
    let pcfg =
        PrepareConfig { reductions: ReductionConfig::all(), use_bcc: true, reorder: true };
    let fresh = PreparedGraph::build_with(&g, pcfg, &build_ctx).unwrap();
    let path = tmp("backends");
    fresh.save(&path, "backends", &build_ctx).unwrap();

    let load = |use_mmap: bool| {
        let rec = RunRecorder::new();
        let ctx = ExecutionContext::new().with_recorder(&rec);
        let (p, _) = PreparedGraph::load_with(&path, use_mmap, &ctx).unwrap();
        let est = p.cumulative(SampleSize::Fraction(0.4), 7, &ctx).unwrap();
        let report = rec.report();
        (est, report)
    };
    let (mapped_est, mapped_report) = load(true);
    let (heap_est, heap_report) = load(false);

    assert_eq!(mapped_est.raw(), heap_est.raw());
    assert_eq!(bits(mapped_est.scaled()), bits(heap_est.scaled()));

    // The heap fallback copy-converts every CSR section, everywhere.
    assert_eq!(heap_report.counters["artifact_bytes_mapped"], 0);
    assert!(heap_report.counters["artifact_bytes_copied"] > 0);
    // The mmap path serves them in place on platforms where the layout
    // allows it (little-endian, 64-bit, unix); elsewhere it falls back.
    if cfg!(all(unix, target_endian = "little", target_pointer_width = "64")) {
        assert!(mapped_report.counters["artifact_bytes_mapped"] > 0);
        assert_eq!(mapped_report.counters["artifact_bytes_copied"], 0);
    }
    // Neither load path re-runs the prepare stage.
    for report in [&mapped_report, &heap_report] {
        assert!(report.phases.iter().any(|p| p.name == "artifact.load"));
        assert!(!report.phases.iter().any(|p| p.name == "reduce" || p.name == "prepare"));
    }
    std::fs::remove_file(&path).ok();
}
